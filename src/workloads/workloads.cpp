#include "workloads/workloads.h"

#include <stdexcept>

#include "common/serialize.h"

namespace dcert::workloads {

namespace {

// DoNothing: consensus/plumbing cost only.
constexpr const char* kDoNothingAsm = R"(
  stop
)";

// CPUHeavy: arg0 iterations of a hash-mixing loop — pure compute, no state.
// Stack discipline: [i, acc] at loop entry.
constexpr const char* kCpuHeavyAsm = R"(
  push 0        ; i
  push 12345    ; acc
loop:
  dup 1         ; i acc i
  hash          ; i acc'
  swap 1        ; acc' i
  push 1
  add           ; acc' i+1
  dup 0
  arg 0
  lt            ; acc' i+1 (i+1 < n)
  jumpi @cont
  stop
cont:
  swap 1        ; i+1 acc'
  jump @loop
)";

// IOHeavy: arg0 = op (0 write burst, 1 scan burst), arg1 = start key,
// arg2 = key count.
constexpr const char* kIoHeavyAsm = R"(
  arg 0
  push 1
  eq
  jumpi @scan
  push 0        ; i
wloop:
  dup 0
  arg 2
  lt
  jumpi @wbody
  stop
wbody:
  dup 0         ; i i
  arg 1
  add           ; i key
  dup 0         ; i key key
  push 31
  mul
  push 7
  add           ; i key value
  sstore        ; i
  push 1
  add
  jump @wloop
scan:
  push 0        ; i
sloop:
  dup 0
  arg 2
  lt
  jumpi @sbody
  stop
sbody:
  dup 0
  arg 1
  add
  sload
  pop
  push 1
  add
  jump @sloop
)";

// KVStore: arg0 = op (0 put, 1 get), arg1 = key, arg2 = value.
constexpr const char* kKvStoreAsm = R"(
  arg 0
  push 1
  eq
  jumpi @get
  arg 1
  arg 2
  sstore
  stop
get:
  arg 1
  sload
  pop
  stop
)";

// SmallBank. Slots: savings(acct) = acct*2, checking(acct) = acct*2 + 1.
// arg0 = op: 0 getBalance(acct), 1 depositChecking(acct, amt),
// 2 transactSavings(acct, amt), 3 sendPayment(src, dst, amt),
// 4 writeCheck(acct, amt), 5 amalgamate(src, dst).
constexpr const char* kSmallBankAsm = R"(
  arg 0
  push 0
  eq
  jumpi @getbal
  arg 0
  push 1
  eq
  jumpi @deposit
  arg 0
  push 2
  eq
  jumpi @savings
  arg 0
  push 3
  eq
  jumpi @payment
  arg 0
  push 4
  eq
  jumpi @check
  arg 0
  push 5
  eq
  jumpi @amalg
  revert

getbal:
  arg 1
  push 2
  mul
  sload          ; sav
  arg 1
  push 2
  mul
  push 1
  add
  sload          ; sav chk
  add
  pop
  stop

deposit:
  arg 1
  push 2
  mul
  push 1
  add            ; slot
  dup 0
  sload          ; slot bal
  arg 2
  add
  sstore
  stop

savings:
  arg 1
  push 2
  mul            ; slot
  dup 0
  sload
  arg 2
  add
  sstore
  stop

payment:
  arg 1
  push 2
  mul
  push 1
  add            ; srcslot
  dup 0
  sload          ; srcslot bal
  dup 0
  arg 3
  lt             ; srcslot bal (bal < amt)
  jumpi @fail
  arg 3
  sub
  sstore
  arg 2
  push 2
  mul
  push 1
  add            ; dstslot
  dup 0
  sload
  arg 3
  add
  sstore
  stop

check:
  arg 1
  push 2
  mul
  push 1
  add
  dup 0
  sload
  dup 0
  arg 2
  lt
  jumpi @fail
  arg 2
  sub
  sstore
  stop

amalg:
  arg 1
  push 2
  mul
  sload          ; sav
  arg 1
  push 2
  mul
  push 1
  add
  sload          ; sav chk
  add            ; total
  arg 2
  push 2
  mul
  push 1
  add            ; total dslot
  dup 0
  sload          ; total dslot dbal
  dup 2
  add            ; total dslot dbal+total
  sstore         ; total
  pop
  arg 1
  push 2
  mul
  push 0
  sstore
  arg 1
  push 2
  mul
  push 1
  add
  push 0
  sstore
  stop

fail:
  revert
)";

const char* SourceFor(Workload kind) {
  switch (kind) {
    case Workload::kDoNothing: return kDoNothingAsm;
    case Workload::kCpuHeavy: return kCpuHeavyAsm;
    case Workload::kIoHeavy: return kIoHeavyAsm;
    case Workload::kKvStore: return kKvStoreAsm;
    case Workload::kSmallBank: return kSmallBankAsm;
  }
  throw std::invalid_argument("unknown workload");
}

}  // namespace

std::string Name(Workload kind) {
  switch (kind) {
    case Workload::kDoNothing: return "DN";
    case Workload::kCpuHeavy: return "CPU";
    case Workload::kIoHeavy: return "IO";
    case Workload::kKvStore: return "KV";
    case Workload::kSmallBank: return "SB";
  }
  throw std::invalid_argument("unknown workload");
}

const vm::Program& ProgramFor(Workload kind) {
  static const vm::Program programs[] = {
      vm::Assemble(SourceFor(Workload::kDoNothing)),
      vm::Assemble(SourceFor(Workload::kCpuHeavy)),
      vm::Assemble(SourceFor(Workload::kIoHeavy)),
      vm::Assemble(SourceFor(Workload::kKvStore)),
      vm::Assemble(SourceFor(Workload::kSmallBank)),
  };
  return programs[static_cast<std::size_t>(kind)];
}

std::uint64_t ContractId(Workload kind, std::uint64_t instance) {
  return static_cast<std::uint64_t>(kind) * 1000 + instance;
}

std::shared_ptr<chain::ContractRegistry> MakeBlockbenchRegistry(
    std::uint64_t instances_per_workload) {
  auto registry = std::make_shared<chain::ContractRegistry>();
  for (Workload kind : kAllWorkloads) {
    for (std::uint64_t k = 0; k < instances_per_workload; ++k) {
      registry->Install(ContractId(kind, k), ProgramFor(kind));
    }
  }
  return registry;
}

AccountPool::AccountPool(std::size_t count, std::uint64_t seed) {
  keys_.reserve(count);
  nonces_.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    Encoder enc;
    enc.Str("dcert-account");
    enc.U64(seed);
    enc.U64(i);
    keys_.push_back(crypto::SecretKey::FromSeed(enc.bytes()));
  }
}

chain::Transaction AccountPool::MakeTx(std::size_t sender,
                                       std::uint64_t contract_id,
                                       std::vector<std::uint64_t> calldata) {
  if (sender >= keys_.size()) {
    throw std::out_of_range("AccountPool::MakeTx: sender index out of range");
  }
  chain::Transaction tx = chain::Transaction::Create(
      keys_[sender], nonces_[sender], contract_id, std::move(calldata));
  ++nonces_[sender];
  return tx;
}

WorkloadGenerator::WorkloadGenerator(Params params, AccountPool& pool)
    : params_(params), pool_(&pool), rng_(params.seed) {}

chain::Transaction WorkloadGenerator::NextTx() {
  const std::size_t sender = rng_.NextBelow(pool_->size());
  const std::uint64_t instance = rng_.NextBelow(params_.instances_per_workload);
  const std::uint64_t contract = ContractId(params_.kind, instance);
  std::vector<std::uint64_t> calldata;

  switch (params_.kind) {
    case Workload::kDoNothing:
      break;
    case Workload::kCpuHeavy:
      calldata = {params_.cpu_iterations};
      break;
    case Workload::kIoHeavy: {
      std::uint64_t op = rng_.NextBelow(2);
      std::uint64_t start = rng_.NextBelow(params_.io_key_space);
      calldata = {op, start, params_.io_keys_per_tx};
      break;
    }
    case Workload::kKvStore: {
      std::uint64_t op = rng_.NextBelow(2);
      std::uint64_t key = rng_.NextBelow(params_.kv_keys);
      std::uint64_t value = rng_.NextU64() | 1;  // non-zero
      calldata = {op, key, value};
      break;
    }
    case Workload::kSmallBank: {
      std::uint64_t op = rng_.NextBelow(6);
      std::uint64_t a = rng_.NextBelow(params_.sb_accounts);
      std::uint64_t b = rng_.NextBelow(params_.sb_accounts);
      std::uint64_t amount = rng_.NextRange(1, 100);
      switch (op) {
        case 0: calldata = {0, a}; break;
        case 1: calldata = {1, a, amount}; break;
        case 2: calldata = {2, a, amount}; break;
        case 3: calldata = {3, a, b, amount}; break;
        case 4: calldata = {4, a, amount}; break;
        default: calldata = {5, a, b}; break;
      }
      break;
    }
  }
  return pool_->MakeTx(sender, contract, std::move(calldata));
}

std::vector<chain::Transaction> WorkloadGenerator::NextBlockTxs(std::size_t count) {
  std::vector<chain::Transaction> txs;
  txs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) txs.push_back(NextTx());
  return txs;
}

}  // namespace dcert::workloads
