#include "svc/response_cache.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace dcert::svc {

ResponseCache::ResponseCache(std::size_t shards,
                             std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
      hits_(std::make_shared<obs::Counter>()),
      misses_(std::make_shared<obs::Counter>()),
      evictions_(std::make_shared<obs::Counter>()),
      invalidations_(std::make_shared<obs::Counter>()),
      invalidations_skipped_(std::make_shared<obs::Counter>()) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("svc.cache.hits", hits_);
  reg.Register("svc.cache.misses", misses_);
  reg.Register("svc.cache.evictions", evictions_);
  reg.Register("svc.cache.invalidations", invalidations_);
  reg.Register("svc.cache.invalidations_skipped", invalidations_skipped_);
}

Hash256 ResponseCache::Key(Op op, std::uint64_t account,
                           std::uint64_t from_height, std::uint64_t to_height,
                           std::uint64_t tip_height) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(op));
  enc.U64(account);
  enc.U64(from_height);
  enc.U64(to_height);
  enc.U64(tip_height);
  return crypto::Sha256::Digest(enc.bytes());
}

ResponseCache::Shard& ResponseCache::ShardFor(const Hash256& key) {
  return *shards_[Hash256Hasher{}(key) % shards_.size()];
}

std::optional<Bytes> ResponseCache::Lookup(const Hash256& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_->Add(1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_->Add(1);
  return it->second->second;
}

void ResponseCache::Insert(const Hash256& key, Bytes reply) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {  // racing miss computed the same reply
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->second = std::move(reply);
    return;
  }
  shard.lru.emplace_front(key, std::move(reply));
  shard.map[key] = shard.lru.begin();
  if (shard.lru.size() > capacity_per_shard_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_->Add(1);
  }
}

void ResponseCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
  invalidations_->Add(1);
}

void ResponseCache::NoteInvalidationSkipped() {
  invalidations_skipped_->Add(1);
}

CacheStats ResponseCache::Stats() const {
  CacheStats s;
  s.hits = hits_->Value();
  s.misses = misses_->Value();
  s.evictions = evictions_->Value();
  s.invalidations = invalidations_->Value();
  s.invalidations_skipped = invalidations_skipped_->Value();
  return s;
}

}  // namespace dcert::svc
