// Real-socket implementation of the svc transport: length-prefixed frames
// (u32 little-endian length, then the payload) over TCP on 127.0.0.1. The
// server runs one accept thread plus one reader thread per connection;
// replies may be written from any thread (the SpServer's pool workers), so
// each connection serializes writes with a mutex.
//
// Connection lifecycle: a reader that hits EOF/error closes its fd and
// removes its registry entry itself; the accept loop reaps finished reader
// threads before each accept, so connection churn leaves fd and thread
// counts flat without waiting for Stop(). Accepts beyond `max_connections`
// are closed immediately, and transient accept failures (EMFILE, ENFILE,
// ECONNABORTED, ENOBUFS) back off briefly instead of killing the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/transport.h"

namespace dcert::svc {

/// Hard cap on a single frame; anything larger is a protocol violation (our
/// proofs are tens of KB) and closes the connection. Enforced on both the
/// read side and the send side (an oversized payload is refused before any
/// byte hits the wire, so it cannot silently truncate to size mod 2^32).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

struct TcpServerConfig {
  /// 0 binds an ephemeral port (read it back via Port()).
  std::uint16_t port = 0;
  /// Concurrent-connection cap: accepts beyond it are closed immediately
  /// (accepting first clears the kernel backlog slot).
  std::size_t max_connections = 256;
  /// SO_SNDTIMEO on accepted sockets: bounds how long a reply write to a
  /// stuck client can pin a pool worker. A timed-out write poisons the
  /// connection so its reader reaps it.
  int write_timeout_ms = 10000;
};

struct TcpServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_over_cap = 0;
  std::uint64_t accept_transient_errors = 0;  // survived, not fatal
  std::size_t open_connections = 0;
};

class TcpServerTransport final : public ServerTransport {
 public:
  explicit TcpServerTransport(std::uint16_t port)
      : TcpServerTransport(TcpServerConfig{port}) {}
  explicit TcpServerTransport(TcpServerConfig config) : config_(config) {}
  ~TcpServerTransport() override;

  Status Start(FrameHandler handler) override;
  void Stop() override;

  /// The bound port; valid after a successful Start.
  std::uint16_t Port() const { return port_; }

  TcpServerStats Stats() const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    std::mutex write_mu;
    bool open = true;        // guarded by write_mu; false => no more writes
    bool fd_closed = false;  // guarded by write_mu; the reader closes once
  };
  struct Entry {
    std::shared_ptr<Conn> conn;
    std::thread reader;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);

  TcpServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  FrameHandler handler_;
  std::thread accept_thread_;
  mutable std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, Entry> conns_;
  std::vector<std::thread> finished_;  // exited readers awaiting join
  std::uint64_t next_conn_id_ = 1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_over_cap_{0};
  std::atomic<std::uint64_t> accept_transient_errors_{0};
};

class TcpClientTransport final : public ClientTransport {
 public:
  static Result<std::unique_ptr<ClientTransport>> Connect(
      const std::string& host, std::uint16_t port,
      std::chrono::milliseconds connect_timeout =
          std::chrono::milliseconds(5000));
  ~TcpClientTransport() override;

  using ClientTransport::Call;
  Result<Bytes> Call(ByteView request,
                     std::chrono::milliseconds deadline) override;

 private:
  explicit TcpClientTransport(int fd) : fd_(fd) {}
  int fd_;
  // After a timeout or I/O error the frame stream may be desynced (a late
  // reply to request N would answer request N+1), so the connection refuses
  // further calls with a connection error and the caller redials.
  bool broken_ = false;
};

}  // namespace dcert::svc
