// Real-socket implementation of the svc transport: length-prefixed frames
// (u32 little-endian length, then the payload) over TCP on 127.0.0.1. The
// server runs one accept thread plus one reader thread per connection;
// replies may be written from any thread (the SpServer's pool workers), so
// each connection serializes writes with a mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "svc/transport.h"

namespace dcert::svc {

/// Hard cap on a single frame; anything larger is a protocol violation (our
/// proofs are tens of KB) and closes the connection.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

class TcpServerTransport final : public ServerTransport {
 public:
  /// `port` 0 binds an ephemeral port (read it back via Port()).
  explicit TcpServerTransport(std::uint16_t port) : port_(port) {}
  ~TcpServerTransport() override;

  Status Start(FrameHandler handler) override;
  void Stop() override;

  /// The bound port; valid after a successful Start.
  std::uint16_t Port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    bool open = true;  // guarded by write_mu
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);

  std::uint16_t port_;
  int listen_fd_ = -1;
  FrameHandler handler_;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

class TcpClientTransport final : public ClientTransport {
 public:
  static Result<std::unique_ptr<ClientTransport>> Connect(
      const std::string& host, std::uint16_t port);
  ~TcpClientTransport() override;

  Result<Bytes> Call(ByteView request) override;

 private:
  explicit TcpClientTransport(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace dcert::svc
