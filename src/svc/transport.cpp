#include "svc/transport.h"

#include <future>

namespace dcert::svc {

Status LoopbackTransport::Start(FrameHandler handler) {
  std::lock_guard<std::mutex> lk(core_->mu);
  if (core_->running) return Status::Error("loopback: already started");
  core_->handler = std::move(handler);
  core_->running = true;
  return Status::Ok();
}

void LoopbackTransport::Stop() {
  std::lock_guard<std::mutex> lk(core_->mu);
  core_->running = false;
  core_->handler = nullptr;
}

std::unique_ptr<ClientTransport> LoopbackTransport::Connect() {
  class Conn final : public ClientTransport {
   public:
    explicit Conn(std::shared_ptr<Core> core) : core_(std::move(core)) {}

    using ClientTransport::Call;
    Result<Bytes> Call(ByteView request,
                       std::chrono::milliseconds deadline) override {
      FrameHandler handler;
      {
        std::lock_guard<std::mutex> lk(core_->mu);
        if (!core_->running) {
          return Result<Bytes>(ConnectionError("loopback: transport stopped"));
        }
        handler = core_->handler;  // copy so Stop can't race the invocation
      }
      auto promise = std::make_shared<std::promise<Bytes>>();
      std::future<Bytes> future = promise->get_future();
      handler(Bytes(request.begin(), request.end()),
              [promise](Bytes reply) { promise->set_value(std::move(reply)); });
      // The server always responds (shed requests get an immediate busy
      // frame); the deadline is a backstop against a buggy or stalled
      // handler, surfaced like any slow server would be over TCP.
      if (future.wait_for(deadline) != std::future_status::ready) {
        return Result<Bytes>(TimeoutError("loopback: no reply within deadline"));
      }
      return future.get();
    }

   private:
    std::shared_ptr<Core> core_;
  };
  return std::make_unique<Conn>(core_);
}

}  // namespace dcert::svc
