// Request/reply envelope for the SP serving protocol. A request frame is
// `u8 op || body`; a reply frame is `u8 code || body` where an OK body is
// op-specific and a busy/error body is a human-readable message. The query
// bodies reuse the net/actors.h wire shapes where they exist; announcements
// carry the full block plus the CI's block and index certificates so the
// server can validate them exactly as a client would before serving them.
#pragma once

#include <cstdint>
#include <string>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/certificate.h"
#include "obs/metrics.h"
#include "query/historical_index.h"

namespace dcert::svc {

enum class Op : std::uint8_t {
  kTipFetch = 1,    // -> TipReply
  kHistorical = 2,  // window query -> QueryReply
  kAggregate = 3,   // count/sum query -> QueryReply
  kAnnounce = 4,    // certified block announcement -> AckReply
  kStats = 5,       // live metrics snapshot -> StatsReply
};

enum class Code : std::uint8_t {
  kOk = 0,
  kBusy = 1,   // admission control shed the request; retry later
  kError = 2,  // malformed request or server-side failure
};

/// Everything a superlight client needs to trust replies from this server:
/// the certified tip header, its block certificate, and the certified
/// historical-index digest with its index certificate.
struct TipInfo {
  chain::BlockHeader header;
  core::BlockCertificate block_cert;
  Hash256 index_digest;
  core::IndexCertificate index_cert;
};

struct QueryRequest {
  Op op = Op::kHistorical;
  std::uint64_t account = 0;
  std::uint64_t from_height = 0;
  std::uint64_t to_height = 0;
};

struct AnnounceRequest {
  chain::Block block;
  core::BlockCertificate block_cert;
  Hash256 index_digest;
  core::IndexCertificate index_cert;
};

/// A decoded reply envelope; `body` is the op-specific OK payload.
struct ReplyEnvelope {
  Code code = Code::kError;
  std::string message;  // busy/error only
  Bytes body;           // ok only
};

// Requests.
Bytes EncodeTipFetchRequest();
Bytes EncodeStatsRequest();
Bytes EncodeQueryRequest(const QueryRequest& req);
Bytes EncodeAnnounceRequest(const AnnounceRequest& req);
/// The op byte of a request frame (without consuming the body).
Result<Op> PeekOp(ByteView frame);
Result<QueryRequest> DecodeQueryRequest(ByteView frame);
Result<AnnounceRequest> DecodeAnnounceRequest(ByteView frame);

// Replies.
Bytes EncodeStatusReply(Code code, const std::string& message);
Bytes EncodeTipReply(const TipInfo& tip);
/// `tip_height` tells the client which tip the proof was generated against.
Bytes EncodeQueryReply(std::uint64_t tip_height,
                       const query::HistoricalQueryProof& proof);
Bytes EncodeAckReply(std::uint64_t tip_height);
Result<ReplyEnvelope> DecodeReplyEnvelope(ByteView frame);
Result<TipInfo> DecodeTipBody(ByteView body);
Result<std::pair<std::uint64_t, query::HistoricalQueryProof>> DecodeQueryBody(
    ByteView body);
Result<std::uint64_t> DecodeAckBody(ByteView body);

/// Metrics snapshots cross the wire as counters/gauges plus full sparse
/// histogram buckets, so the client can compute any percentile (and render
/// Prometheus text) without the server choosing quantiles for it.
Bytes EncodeStatsReply(const obs::MetricsSnapshot& snap);
Result<obs::MetricsSnapshot> DecodeStatsBody(ByteView body);

}  // namespace dcert::svc
