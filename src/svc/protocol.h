// Request/reply envelope for the SP serving protocol. A request frame is
// `u8 op || body`; a reply frame is `u8 code || body` where an OK body is
// op-specific and a busy/error body is a human-readable message. The query
// bodies reuse the net/actors.h wire shapes where they exist; announcements
// carry the full block plus the CI's block and index certificates so the
// server can validate them exactly as a client would before serving them.
#pragma once

#include <cstdint>
#include <string>

#include "chain/block.h"
#include "common/bytes.h"
#include "common/status.h"
#include "dcert/certificate.h"
#include "obs/metrics.h"
#include "query/historical_index.h"

namespace dcert::svc {

enum class Op : std::uint8_t {
  kTipFetch = 1,    // -> TipReply
  kHistorical = 2,  // window query -> QueryReply
  kAggregate = 3,   // count/sum query -> QueryReply
  kAnnounce = 4,    // certified block announcement -> AckReply
  kStats = 5,       // live metrics snapshot -> StatsReply
  kShardMap = 6,    // fetch the fleet shard map -> opaque map bytes
  kShardScoped = 7,  // shard-addressed envelope around tip/query requests
  kHealth = 8,       // lightweight liveness/health probe -> HealthReply
};

enum class Code : std::uint8_t {
  kOk = 0,
  kBusy = 1,   // admission control shed the request; retry later
  kError = 2,  // malformed request or server-side failure
  /// The request named a shard-map version or shard this server does not
  /// hold (resharding happened, or the router misrouted). Retryable after
  /// the client refreshes its shard map — never a permanent failure.
  kStaleShard = 3,
};

/// Everything a superlight client needs to trust replies from this server:
/// the certified tip header, its block certificate, and the certified
/// historical-index digest with its index certificate.
struct TipInfo {
  chain::BlockHeader header;
  core::BlockCertificate block_cert;
  Hash256 index_digest;
  core::IndexCertificate index_cert;
};

struct QueryRequest {
  Op op = Op::kHistorical;
  std::uint64_t account = 0;
  std::uint64_t from_height = 0;
  std::uint64_t to_height = 0;
};

/// The slice of a fleet shard map one server enforces: which keys and block
/// heights it owns, under which map version. Plain data so svc needs no
/// dependency on the fleet layer that computes it (fleet::ShardMap does).
/// map_version 0 means "unsharded": the server owns everything.
struct ShardAssignment {
  std::uint64_t map_version = 0;
  std::uint32_t shard_id = 0;
  std::uint32_t total_shards = 1;
  std::uint64_t key_lo = 0;  // inclusive account-word range
  std::uint64_t key_hi = ~std::uint64_t{0};
  std::uint64_t height_lo = 0;  // inclusive block-height band
  std::uint64_t height_hi = ~std::uint64_t{0};

  bool Sharded() const { return map_version != 0; }
  bool OwnsKey(std::uint64_t account) const {
    return account >= key_lo && account <= key_hi;
  }
  /// The whole query window must sit inside this shard's height band;
  /// clients split windows at band boundaries before asking.
  bool OwnsWindow(std::uint64_t from, std::uint64_t to) const {
    return from >= height_lo && to <= height_hi;
  }
  bool OwnsWrite(std::uint64_t account, std::uint64_t height) const {
    return OwnsKey(account) && height >= height_lo && height <= height_hi;
  }
};

/// Decoded kShardScoped envelope: the addressed shard plus the inner request
/// frame (tip fetch or query) the shard should process after ownership checks.
struct ShardScopedRequest {
  std::uint64_t map_version = 0;
  std::uint32_t shard_id = 0;
  Bytes inner;
};

struct AnnounceRequest {
  chain::Block block;
  core::BlockCertificate block_cert;
  Hash256 index_digest;
  core::IndexCertificate index_cert;
};

/// A decoded reply envelope; `body` is the op-specific OK payload.
struct ReplyEnvelope {
  Code code = Code::kError;
  std::string message;  // busy/error only
  Bytes body;           // ok only
};

// Requests.
Bytes EncodeTipFetchRequest();
Bytes EncodeStatsRequest();
Bytes EncodeQueryRequest(const QueryRequest& req);
Bytes EncodeAnnounceRequest(const AnnounceRequest& req);
Bytes EncodeShardMapRequest();
/// Wraps a complete inner request frame in a shard-addressed envelope; the
/// router routes on the header without touching the inner frame, and the
/// shard checks (map_version, shard_id) before processing it.
Bytes EncodeShardScopedRequest(std::uint64_t map_version,
                               std::uint32_t shard_id, ByteView inner);
/// The op byte of a request frame (without consuming the body).
Result<Op> PeekOp(ByteView frame);
Result<QueryRequest> DecodeQueryRequest(ByteView frame);
Result<AnnounceRequest> DecodeAnnounceRequest(ByteView frame);
Result<ShardScopedRequest> DecodeShardScopedRequest(ByteView frame);

// Replies.
Bytes EncodeStatusReply(Code code, const std::string& message);
Bytes EncodeTipReply(const TipInfo& tip);
/// `tip_height` tells the client which tip the proof was generated against.
Bytes EncodeQueryReply(std::uint64_t tip_height,
                       const query::HistoricalQueryProof& proof);
Bytes EncodeAckReply(std::uint64_t tip_height);
/// OK body is the opaque serialized fleet shard map (fleet::ShardMap bytes);
/// svc carries it without interpreting it so the dependency stays one-way.
Bytes EncodeShardMapReply(ByteView map_bytes);
Result<ReplyEnvelope> DecodeReplyEnvelope(ByteView frame);
Result<Bytes> DecodeShardMapBody(ByteView body);
Result<TipInfo> DecodeTipBody(ByteView body);
Result<std::pair<std::uint64_t, query::HistoricalQueryProof>> DecodeQueryBody(
    ByteView body);
Result<std::uint64_t> DecodeAckBody(ByteView body);

/// A lightweight health probe reply: enough for a router or operator to
/// judge replica liveness, load, and version skew without pulling the full
/// metrics snapshot. `shed` vs `served` gives the shed rate; `build` is the
/// human-readable build string (git SHA + sanitizer + build type).
struct HealthInfo {
  std::uint64_t tip_height = 0;
  std::uint64_t uptime_ms = 0;
  std::uint64_t inflight = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::string build;
};

Bytes EncodeHealthRequest();
Bytes EncodeHealthReply(const HealthInfo& info);
Result<HealthInfo> DecodeHealthBody(ByteView body);

/// Metrics snapshots cross the wire as counters/gauges plus full sparse
/// histogram buckets, so the client can compute any percentile (and render
/// Prometheus text) without the server choosing quantiles for it.
Bytes EncodeStatsReply(const obs::MetricsSnapshot& snap);
Result<obs::MetricsSnapshot> DecodeStatsBody(ByteView body);

}  // namespace dcert::svc
