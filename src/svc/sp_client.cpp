#include "svc/sp_client.h"

#include <algorithm>
#include <optional>
#include <thread>

namespace dcert::svc {

namespace {

using Ms = std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

/// Process-wide mirrors of retry-path activity across every SpClient (the
/// per-instance SpClientStats stays the exact view tests assert on).
struct ClientMetrics {
  std::shared_ptr<obs::Counter> attempts;
  std::shared_ptr<obs::Counter> retries;
  std::shared_ptr<obs::Counter> reconnects;
  std::shared_ptr<obs::Counter> timeouts;
  std::shared_ptr<obs::Counter> transport_errors;
  std::shared_ptr<obs::Counter> busy_replies;
  std::shared_ptr<obs::Counter> stale_shard_replies;
  std::shared_ptr<obs::Counter> giveups;

  static ClientMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ClientMetrics* m = new ClientMetrics{
        reg.GetCounter("svc.client.attempts"),
        reg.GetCounter("svc.client.retries"),
        reg.GetCounter("svc.client.reconnects"),
        reg.GetCounter("svc.client.timeouts"),
        reg.GetCounter("svc.client.transport_errors"),
        reg.GetCounter("svc.client.busy_replies"),
        reg.GetCounter("svc.client.stale_shard_replies"),
        reg.GetCounter("svc.client.giveups")};
    return *m;
  }
};

}  // namespace

Status SpClient::EnsureConnected() {
  if (conn_) return Status::Ok();
  if (!connector_) {
    return ConnectionError("sp client: connection broken and no reconnect path");
  }
  auto dialed = connector_();
  if (!dialed.ok()) return dialed.status();
  conn_ = std::move(dialed.value());
  if (ever_connected_) {  // the first dial is not a *re*dial
    ++stats_.reconnects;
    ClientMetrics::Get().reconnects->Add(1);
  }
  ever_connected_ = true;
  return Status::Ok();
}

Result<Bytes> SpClient::Roundtrip(const Bytes& request,
                                  const BodyDecoder& decode_body) {
  ++stats_.calls;
  const int max_attempts = std::max(1, policy_.max_attempts);
  const auto budget_end = Clock::now() + policy_.retry_budget;
  Ms backoff = policy_.initial_backoff;
  Status last_error = Status::Error("sp client: no attempts made");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff, jittered into [backoff/2, backoff] so
      // concurrent clients retrying the same incident spread out.
      const auto base = std::max<std::int64_t>(1, backoff.count());
      const Ms sleep(base / 2 + static_cast<std::int64_t>(jitter_rng_.NextBelow(
                                    static_cast<std::uint64_t>(base / 2 + 1))));
      if (Clock::now() + sleep >= budget_end) break;  // budget spent: give up
      std::this_thread::sleep_for(sleep);
      stats_.backoff_ms_total += static_cast<std::uint64_t>(sleep.count());
      backoff = std::min(policy_.max_backoff,
                         Ms(static_cast<std::int64_t>(
                             static_cast<double>(backoff.count()) *
                             policy_.backoff_multiplier)));
      ++stats_.retries;
      ClientMetrics::Get().retries->Add(1);
    }
    ++stats_.attempts;
    ClientMetrics::Get().attempts->Add(1);
    last_busy_ = false;
    last_stale_shard_ = false;

    if (Status st = EnsureConnected(); !st) {
      last_error = st;
      if (IsTransientTransportError(st)) {
        ++stats_.transport_errors;
        ClientMetrics::Get().transport_errors->Add(1);
        continue;  // refused/failed dial: back off and redial
      }
      break;  // no reconnect path, or a permanent dial failure
    }

    auto raw = conn_->Call(request, policy_.call_deadline);
    if (!raw.ok()) {
      last_error = raw.status();
      if (IsTimeoutError(last_error)) {
        ++stats_.timeouts;
        ClientMetrics::Get().timeouts->Add(1);
      } else {
        ++stats_.transport_errors;
        ClientMetrics::Get().transport_errors->Add(1);
      }
      if (IsTransientTransportError(last_error)) {
        conn_.reset();  // the stream may be desynced; redial next attempt
        continue;
      }
      break;  // e.g. oversized request: retrying cannot help
    }

    auto env = DecodeReplyEnvelope(raw.value());
    if (!env.ok()) {
      // Garbage from an untrusted SP or a corrupting network; the stream
      // cannot be trusted to be frame-aligned anymore, so redial.
      ++stats_.transport_errors;
      ClientMetrics::Get().transport_errors->Add(1);
      last_error = ConnectionError("sp client: undecodable reply: " +
                                   env.message());
      conn_.reset();
      continue;
    }
    if (env.value().code == Code::kBusy) {
      ++stats_.busy_replies;
      ClientMetrics::Get().busy_replies->Add(1);
      last_busy_ = true;
      last_error = Status::Error("busy: " + env.value().message);
      continue;  // the connection is fine; the server shed us — back off
    }
    if (env.value().code == Code::kStaleShard) {
      // The *map* is wrong, not the connection — blind retries against the
      // same shard cannot succeed. Fail fast; the caller refreshes its shard
      // map (LastReplyStaleShard()) and re-routes.
      ++stats_.stale_shard_replies;
      ClientMetrics::Get().stale_shard_replies->Add(1);
      last_stale_shard_ = true;
      ++stats_.giveups;
      ClientMetrics::Get().giveups->Add(1);
      return Result<Bytes>::Error("stale shard: " + env.value().message);
    }
    if (env.value().code == Code::kError) {
      return Result<Bytes>::Error("server: " + env.value().message);
    }
    if (decode_body) {
      if (Status st = decode_body(env.value().body); !st) {
        // An OK envelope with an undecodable body is a corrupted reply, not
        // a server decision: treat it like any transport fault.
        ++stats_.transport_errors;
        ClientMetrics::Get().transport_errors->Add(1);
        last_error = ConnectionError("sp client: corrupted reply body: " +
                                     st.message());
        conn_.reset();
        continue;
      }
    }
    last_busy_ = false;
    return std::move(env.value().body);
  }
  ++stats_.giveups;
  ClientMetrics::Get().giveups->Add(1);
  return Result<Bytes>(last_error);
}

Result<TipInfo> SpClient::FetchTip() {
  std::optional<TipInfo> tip;
  auto body = Roundtrip(EncodeTipFetchRequest(), [&tip](const Bytes& b) {
    auto decoded = DecodeTipBody(b);
    if (!decoded.ok()) return decoded.status();
    tip = std::move(decoded.value());
    return Status::Ok();
  });
  if (!body.ok()) return Result<TipInfo>(body.status());
  return std::move(*tip);
}

Result<obs::MetricsSnapshot> SpClient::FetchStats() {
  std::optional<obs::MetricsSnapshot> snap;
  auto body = Roundtrip(EncodeStatsRequest(), [&snap](const Bytes& b) {
    auto decoded = DecodeStatsBody(b);
    if (!decoded.ok()) return decoded.status();
    snap = std::move(decoded.value());
    return Status::Ok();
  });
  if (!body.ok()) return Result<obs::MetricsSnapshot>(body.status());
  return std::move(*snap);
}

Result<HealthInfo> SpClient::FetchHealth() {
  std::optional<HealthInfo> info;
  auto body = Roundtrip(EncodeHealthRequest(), [&info](const Bytes& b) {
    auto decoded = DecodeHealthBody(b);
    if (!decoded.ok()) return decoded.status();
    info = std::move(decoded.value());
    return Status::Ok();
  });
  if (!body.ok()) return Result<HealthInfo>(body.status());
  return std::move(*info);
}

Result<Bytes> SpClient::FetchShardMap() {
  std::optional<Bytes> map;
  auto body = Roundtrip(EncodeShardMapRequest(), [&map](const Bytes& b) {
    auto decoded = DecodeShardMapBody(b);
    if (!decoded.ok()) return decoded.status();
    map = std::move(decoded.value());
    return Status::Ok();
  });
  if (!body.ok()) return Result<Bytes>(body.status());
  return std::move(*map);
}

Result<SpClient::QueryResult> SpClient::Query(Op op, std::uint64_t account,
                                              std::uint64_t from_height,
                                              std::uint64_t to_height) {
  using R = Result<QueryResult>;
  QueryRequest req{op, account, from_height, to_height};
  std::optional<QueryResult> out;
  auto body = Roundtrip(EncodeQueryRequest(req), [&out](const Bytes& b) {
    auto decoded = DecodeQueryBody(b);
    if (!decoded.ok()) return decoded.status();
    out = QueryResult{decoded.value().first, std::move(decoded.value().second)};
    return Status::Ok();
  });
  if (!body.ok()) return R(body.status());
  return std::move(*out);
}

Result<SpClient::QueryResult> SpClient::Historical(std::uint64_t account,
                                                   std::uint64_t from_height,
                                                   std::uint64_t to_height) {
  return Query(Op::kHistorical, account, from_height, to_height);
}

Result<SpClient::QueryResult> SpClient::Aggregate(std::uint64_t account,
                                                  std::uint64_t from_height,
                                                  std::uint64_t to_height) {
  return Query(Op::kAggregate, account, from_height, to_height);
}

Result<TipInfo> SpClient::FetchTipSharded(std::uint64_t map_version,
                                          std::uint32_t shard_id) {
  std::optional<TipInfo> tip;
  auto body = Roundtrip(
      EncodeShardScopedRequest(map_version, shard_id, EncodeTipFetchRequest()),
      [&tip](const Bytes& b) {
        auto decoded = DecodeTipBody(b);
        if (!decoded.ok()) return decoded.status();
        tip = std::move(decoded.value());
        return Status::Ok();
      });
  if (!body.ok()) return Result<TipInfo>(body.status());
  return std::move(*tip);
}

Result<SpClient::QueryResult> SpClient::QuerySharded(
    Op op, std::uint64_t map_version, std::uint32_t shard_id,
    std::uint64_t account, std::uint64_t from_height, std::uint64_t to_height) {
  using R = Result<QueryResult>;
  QueryRequest req{op, account, from_height, to_height};
  std::optional<QueryResult> out;
  auto body = Roundtrip(
      EncodeShardScopedRequest(map_version, shard_id, EncodeQueryRequest(req)),
      [&out](const Bytes& b) {
        auto decoded = DecodeQueryBody(b);
        if (!decoded.ok()) return decoded.status();
        out = QueryResult{decoded.value().first,
                          std::move(decoded.value().second)};
        return Status::Ok();
      });
  if (!body.ok()) return R(body.status());
  return std::move(*out);
}

Result<SpClient::QueryResult> SpClient::HistoricalSharded(
    std::uint64_t map_version, std::uint32_t shard_id, std::uint64_t account,
    std::uint64_t from_height, std::uint64_t to_height) {
  return QuerySharded(Op::kHistorical, map_version, shard_id, account,
                      from_height, to_height);
}

Result<SpClient::QueryResult> SpClient::AggregateSharded(
    std::uint64_t map_version, std::uint32_t shard_id, std::uint64_t account,
    std::uint64_t from_height, std::uint64_t to_height) {
  return QuerySharded(Op::kAggregate, map_version, shard_id, account,
                      from_height, to_height);
}

Result<std::uint64_t> SpClient::Announce(const AnnounceRequest& req) {
  std::optional<std::uint64_t> ack;
  auto body = Roundtrip(EncodeAnnounceRequest(req), [&ack](const Bytes& b) {
    auto decoded = DecodeAckBody(b);
    if (!decoded.ok()) return decoded.status();
    ack = decoded.value();
    return Status::Ok();
  });
  if (!body.ok()) return Result<std::uint64_t>(body.status());
  return *ack;
}

}  // namespace dcert::svc
