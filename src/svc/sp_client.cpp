#include "svc/sp_client.h"

namespace dcert::svc {

Result<Bytes> SpClient::Roundtrip(const Bytes& request) {
  last_busy_ = false;
  auto raw = conn_->Call(request);
  if (!raw.ok()) return raw;
  auto env = DecodeReplyEnvelope(raw.value());
  if (!env.ok()) return Result<Bytes>(env.status());
  if (env.value().code == Code::kBusy) {
    last_busy_ = true;
    return Result<Bytes>::Error("busy: " + env.value().message);
  }
  if (env.value().code == Code::kError) {
    return Result<Bytes>::Error("server: " + env.value().message);
  }
  return std::move(env.value().body);
}

Result<TipInfo> SpClient::FetchTip() {
  auto body = Roundtrip(EncodeTipFetchRequest());
  if (!body.ok()) return Result<TipInfo>(body.status());
  return DecodeTipBody(body.value());
}

Result<SpClient::QueryResult> SpClient::Historical(std::uint64_t account,
                                                   std::uint64_t from_height,
                                                   std::uint64_t to_height) {
  using R = Result<QueryResult>;
  QueryRequest req{Op::kHistorical, account, from_height, to_height};
  auto body = Roundtrip(EncodeQueryRequest(req));
  if (!body.ok()) return R(body.status());
  auto decoded = DecodeQueryBody(body.value());
  if (!decoded.ok()) return R(decoded.status());
  return QueryResult{decoded.value().first, std::move(decoded.value().second)};
}

Result<SpClient::QueryResult> SpClient::Aggregate(std::uint64_t account,
                                                  std::uint64_t from_height,
                                                  std::uint64_t to_height) {
  using R = Result<QueryResult>;
  QueryRequest req{Op::kAggregate, account, from_height, to_height};
  auto body = Roundtrip(EncodeQueryRequest(req));
  if (!body.ok()) return R(body.status());
  auto decoded = DecodeQueryBody(body.value());
  if (!decoded.ok()) return R(decoded.status());
  return QueryResult{decoded.value().first, std::move(decoded.value().second)};
}

Result<std::uint64_t> SpClient::Announce(const AnnounceRequest& req) {
  auto body = Roundtrip(EncodeAnnounceRequest(req));
  if (!body.ok()) return Result<std::uint64_t>(body.status());
  return DecodeAckBody(body.value());
}

}  // namespace dcert::svc
