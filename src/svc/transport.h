// Transport abstraction for the concurrent query-serving subsystem: the same
// SpServer code runs over an in-process loopback (deterministic unit tests)
// and over real TCP sockets (length-prefixed frames), because the server only
// ever sees opaque request frames and a respond callback.
//
// Threading contract: the transport invokes the handler from its own threads
// (one per connection for TCP, the calling client thread for loopback); the
// handler may invoke `respond` inline or later from any thread, exactly once
// per request. After Stop() returns, late responds become no-ops.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "common/bytes.h"
#include "common/status.h"

namespace dcert::svc {

/// Delivers the reply frame for one request. Callable from any thread, at
/// most once.
using Respond = std::function<void(Bytes reply)>;

/// Invoked by the transport for each inbound request frame.
using FrameHandler = std::function<void(Bytes request, Respond respond)>;

/// Server side of a transport: accepts request frames and routes them to the
/// registered handler.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;
  /// Starts serving; `handler` may be invoked concurrently from multiple
  /// transport threads.
  virtual Status Start(FrameHandler handler) = 0;
  /// Stops accepting requests. Safe to call twice. The server is expected to
  /// have drained in-flight work before calling this (SpServer::Shutdown
  /// does), so replies are delivered before connections close.
  virtual void Stop() = 0;
};

/// One logical client connection: blocking request/response round trips.
/// A connection serves one outstanding call at a time; use one connection
/// per client thread.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  virtual Result<Bytes> Call(ByteView request) = 0;
};

/// In-process transport: client Calls invoke the server handler directly on
/// the calling thread and block on a future for the reply. Concurrency comes
/// from the callers — N client threads mean N concurrent handler invocations,
/// exactly like N TCP connections.
class LoopbackTransport final : public ServerTransport {
 public:
  Status Start(FrameHandler handler) override;
  void Stop() override;

  /// Opens a client connection bound to this transport. The connection stays
  /// valid after Stop (calls then fail with an error status).
  std::unique_ptr<ClientTransport> Connect();

 private:
  struct Core {
    std::mutex mu;
    FrameHandler handler;
    bool running = false;
  };
  std::shared_ptr<Core> core_ = std::make_shared<Core>();
};

}  // namespace dcert::svc
