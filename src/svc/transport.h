// Transport abstraction for the concurrent query-serving subsystem: the same
// SpServer code runs over an in-process loopback (deterministic unit tests)
// and over real TCP sockets (length-prefixed frames), because the server only
// ever sees opaque request frames and a respond callback.
//
// Threading contract: the transport invokes the handler from its own threads
// (one per connection for TCP, the calling client thread for loopback); the
// handler may invoke `respond` inline or later from any thread, exactly once
// per request. After Stop() returns, late responds become no-ops.
//
// Failure contract: every blocking client operation is bounded by a deadline,
// and transport-level failures are tagged as *timeout* or *connection* errors
// (see the taxonomy below) so retry policies can tell transient faults from
// permanent ones without parsing prose.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace dcert::svc {

/// Deadline applied when a caller does not pass one explicitly.
inline constexpr std::chrono::milliseconds kDefaultCallDeadline{30000};

// --- Transport error taxonomy -------------------------------------------
// Status carries only a message, so transports tag the two *transient*
// failure classes with fixed prefixes. Everything else (malformed request,
// server-reported error) is permanent: retrying cannot help.

inline constexpr const char kTimeoutErrorPrefix[] = "transport timeout";
inline constexpr const char kConnectionErrorPrefix[] = "transport connection";

/// The operation did not complete within its deadline (slow/stalled peer).
inline Status TimeoutError(const std::string& detail) {
  return Status::Error(std::string(kTimeoutErrorPrefix) + ": " + detail);
}

/// The connection is unusable (peer gone, refused, or stream desynced).
inline Status ConnectionError(const std::string& detail) {
  return Status::Error(std::string(kConnectionErrorPrefix) + ": " + detail);
}

inline bool IsTimeoutError(const Status& s) {
  return s.message().rfind(kTimeoutErrorPrefix, 0) == 0;
}

inline bool IsConnectionError(const Status& s) {
  return s.message().rfind(kConnectionErrorPrefix, 0) == 0;
}

/// Transient transport failures worth retrying (possibly on a fresh
/// connection); permanent failures — protocol violations, server-side
/// errors — are excluded on purpose.
inline bool IsTransientTransportError(const Status& s) {
  return IsTimeoutError(s) || IsConnectionError(s);
}

/// Delivers the reply frame for one request. Callable from any thread, at
/// most once.
using Respond = std::function<void(Bytes reply)>;

/// Invoked by the transport for each inbound request frame.
using FrameHandler = std::function<void(Bytes request, Respond respond)>;

/// Server side of a transport: accepts request frames and routes them to the
/// registered handler.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;
  /// Starts serving; `handler` may be invoked concurrently from multiple
  /// transport threads.
  virtual Status Start(FrameHandler handler) = 0;
  /// Stops accepting requests. Safe to call twice. The server is expected to
  /// have drained in-flight work before calling this (SpServer::Shutdown
  /// does), so replies are delivered before connections close.
  virtual void Stop() = 0;
};

/// One logical client connection: blocking request/response round trips.
/// A connection serves one outstanding call at a time; use one connection
/// per client thread.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  /// Round trip bounded by `deadline`. On a timeout the frame stream may be
  /// desynced (a late reply would be misattributed), so implementations mark
  /// the connection broken and subsequent calls fail fast with a connection
  /// error — callers reconnect rather than reuse.
  virtual Result<Bytes> Call(ByteView request,
                             std::chrono::milliseconds deadline) = 0;
  Result<Bytes> Call(ByteView request) {
    return Call(request, kDefaultCallDeadline);
  }
};

/// Dials a fresh connection; retrying clients use this to reconnect after a
/// broken stream and tests/benches wrap it to inject connect-time faults.
using Connector = std::function<Result<std::unique_ptr<ClientTransport>>()>;

/// In-process transport: client Calls invoke the server handler directly on
/// the calling thread and block on a future for the reply. Concurrency comes
/// from the callers — N client threads mean N concurrent handler invocations,
/// exactly like N TCP connections.
class LoopbackTransport final : public ServerTransport {
 public:
  Status Start(FrameHandler handler) override;
  void Stop() override;

  /// Opens a client connection bound to this transport. The connection stays
  /// valid after Stop (calls then fail with an error status).
  std::unique_ptr<ClientTransport> Connect();

 private:
  struct Core {
    std::mutex mu;
    FrameHandler handler;
    bool running = false;
  };
  std::shared_ptr<Core> core_ = std::make_shared<Core>();
};

}  // namespace dcert::svc
