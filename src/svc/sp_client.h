// Client-side wrapper over a ClientTransport connection: encodes requests,
// decodes reply envelopes, and surfaces the server's busy signal distinctly
// from hard errors so callers (the load generator, retry loops) can tell
// shedding from failure. Verification of the returned proofs stays with the
// caller via the existing HistoricalIndex::VerifyQuery / SuperlightClient
// checks — the transport and the SP are untrusted.
//
// Retry policy: a logical call may span several attempts. Transient failures
// — kBusy shedding, transport timeouts, broken/refused connections, and
// replies too garbled to decode — back off exponentially (with seeded
// jitter) and retry, redialing through the Connector when the stream is no
// longer trustworthy. Server-reported errors are permanent and never
// retried. The defaults (max_attempts = 1) preserve the one-shot behavior
// existing call sites were written against.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "svc/protocol.h"
#include "svc/transport.h"

namespace dcert::svc {

struct RetryPolicy {
  /// Total tries per logical call; 1 = fail on the first error.
  int max_attempts = 1;
  /// Deadline handed to every transport Call.
  std::chrono::milliseconds call_deadline = kDefaultCallDeadline;
  /// Bounded exponential backoff between attempts; the actual sleep is
  /// jittered uniformly in [backoff/2, backoff] to decorrelate retry storms.
  std::chrono::milliseconds initial_backoff{5};
  std::chrono::milliseconds max_backoff{250};
  double backoff_multiplier = 2.0;
  /// Wall-clock budget across all attempts of one logical call; once a
  /// backoff would overrun it, the client gives up with the last error.
  std::chrono::milliseconds retry_budget{10000};
  std::uint64_t jitter_seed = 0x7e57;
};

/// Retry budget accounting, surfaced so benches and tests can see how hard
/// the client had to work (and that fault injection actually bit).
struct SpClientStats {
  std::uint64_t calls = 0;             // logical calls issued
  std::uint64_t attempts = 0;          // transport round trips tried
  std::uint64_t retries = 0;           // attempts after the first
  std::uint64_t reconnects = 0;        // successful redials
  std::uint64_t timeouts = 0;          // attempts lost to deadlines
  std::uint64_t transport_errors = 0;  // broken connections, garbled replies
  std::uint64_t busy_replies = 0;      // kBusy sheds observed
  std::uint64_t stale_shard_replies = 0;  // kStaleShard rejections observed
  std::uint64_t giveups = 0;           // logical calls that exhausted retries
  std::uint64_t backoff_ms_total = 0;  // wall clock spent backing off
};

class SpClient {
 public:
  /// One-shot client over an existing connection (no reconnect path).
  explicit SpClient(std::unique_ptr<ClientTransport> conn,
                    RetryPolicy policy = {})
      : conn_(std::move(conn)),
        policy_(policy),
        jitter_rng_(policy.jitter_seed) {}

  /// Reconnecting client: dials lazily through `connector` and redials
  /// whenever the stream breaks (timeout, EOF, undecodable reply).
  SpClient(Connector connector, RetryPolicy policy)
      : connector_(std::move(connector)),
        policy_(policy),
        jitter_rng_(policy.jitter_seed) {}

  struct QueryResult {
    std::uint64_t tip_height = 0;
    query::HistoricalQueryProof proof;
  };

  Result<TipInfo> FetchTip();
  /// Live metrics snapshot from the server's registry (Op::kStats).
  Result<obs::MetricsSnapshot> FetchStats();
  /// Lightweight liveness/health probe (Op::kHealth).
  Result<HealthInfo> FetchHealth();
  /// Serialized fleet shard map (Op::kShardMap); decode with
  /// fleet::ShardMap::Deserialize.
  Result<Bytes> FetchShardMap();
  Result<QueryResult> Historical(std::uint64_t account,
                                 std::uint64_t from_height,
                                 std::uint64_t to_height);
  Result<QueryResult> Aggregate(std::uint64_t account,
                                std::uint64_t from_height,
                                std::uint64_t to_height);
  Result<std::uint64_t> Announce(const AnnounceRequest& req);

  // Shard-addressed variants: the request carries (map_version, shard_id) so
  // a shard server can reject misrouted or stale-map calls with kStaleShard.
  // A kStaleShard reply fails the call without retrying (blind retries
  // cannot help — the *map* is wrong); LastReplyStaleShard() tells callers
  // to refresh their shard map and re-route.
  Result<TipInfo> FetchTipSharded(std::uint64_t map_version,
                                  std::uint32_t shard_id);
  Result<QueryResult> HistoricalSharded(std::uint64_t map_version,
                                        std::uint32_t shard_id,
                                        std::uint64_t account,
                                        std::uint64_t from_height,
                                        std::uint64_t to_height);
  Result<QueryResult> AggregateSharded(std::uint64_t map_version,
                                       std::uint32_t shard_id,
                                       std::uint64_t account,
                                       std::uint64_t from_height,
                                       std::uint64_t to_height);

  /// True when the last failed call ended on a kBusy shed by admission
  /// control rather than a transport/protocol error.
  bool LastReplyBusy() const { return last_busy_; }
  /// True when the last failed call was rejected with kStaleShard.
  bool LastReplyStaleShard() const { return last_stale_shard_; }

  const SpClientStats& Stats() const { return stats_; }

 private:
  /// Validates (and captures) the op-specific OK body of a reply; a failure
  /// marks the reply garbled, which is a retryable transport-level fault.
  using BodyDecoder = std::function<Status(const Bytes& body)>;

  Result<QueryResult> Query(Op op, std::uint64_t account,
                            std::uint64_t from_height, std::uint64_t to_height);
  Result<QueryResult> QuerySharded(Op op, std::uint64_t map_version,
                                   std::uint32_t shard_id,
                                   std::uint64_t account,
                                   std::uint64_t from_height,
                                   std::uint64_t to_height);
  /// One logical call: attempt/backoff/reconnect loop around the transport.
  Result<Bytes> Roundtrip(const Bytes& request, const BodyDecoder& decode_body);
  /// Ensures conn_ is live, dialing through connector_ if present.
  Status EnsureConnected();

  std::unique_ptr<ClientTransport> conn_;
  Connector connector_;
  RetryPolicy policy_;
  Rng jitter_rng_;
  SpClientStats stats_;
  bool last_busy_ = false;
  bool last_stale_shard_ = false;
  bool ever_connected_ = false;
};

}  // namespace dcert::svc
