// Client-side wrapper over a ClientTransport connection: encodes requests,
// decodes reply envelopes, and surfaces the server's busy signal distinctly
// from hard errors so callers (the load generator, retry loops) can tell
// shedding from failure. Verification of the returned proofs stays with the
// caller via the existing HistoricalIndex::VerifyQuery / SuperlightClient
// checks — the transport and the SP are untrusted.
#pragma once

#include <cstdint>
#include <memory>

#include "svc/protocol.h"
#include "svc/transport.h"

namespace dcert::svc {

class SpClient {
 public:
  explicit SpClient(std::unique_ptr<ClientTransport> conn)
      : conn_(std::move(conn)) {}

  struct QueryResult {
    std::uint64_t tip_height = 0;
    query::HistoricalQueryProof proof;
  };

  Result<TipInfo> FetchTip();
  Result<QueryResult> Historical(std::uint64_t account,
                                 std::uint64_t from_height,
                                 std::uint64_t to_height);
  Result<QueryResult> Aggregate(std::uint64_t account,
                                std::uint64_t from_height,
                                std::uint64_t to_height);
  Result<std::uint64_t> Announce(const AnnounceRequest& req);

  /// True when the last failed call was shed by admission control (kBusy)
  /// rather than a transport/protocol error.
  bool LastReplyBusy() const { return last_busy_; }

 private:
  /// One round trip; returns the OK body or an error (setting last_busy_).
  Result<Bytes> Roundtrip(const Bytes& request);

  std::unique_ptr<ClientTransport> conn_;
  bool last_busy_ = false;
};

}  // namespace dcert::svc
