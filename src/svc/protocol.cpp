#include "svc/protocol.h"

#include "common/serialize.h"

namespace dcert::svc {

namespace {

bool ValidOp(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Op::kTipFetch) &&
         op <= static_cast<std::uint8_t>(Op::kHealth);
}

/// Caps on the decoded snapshot so a malicious stats reply cannot balloon
/// client memory (a real snapshot has tens of metrics).
constexpr std::size_t kMaxStatsMetrics = 4096;
constexpr std::size_t kMaxStatsBuckets = 8192;

}  // namespace

Bytes EncodeTipFetchRequest() {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kTipFetch));
  return enc.Take();
}

Bytes EncodeStatsRequest() {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kStats));
  return enc.Take();
}

Bytes EncodeShardMapRequest() {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kShardMap));
  return enc.Take();
}

Bytes EncodeShardScopedRequest(std::uint64_t map_version,
                               std::uint32_t shard_id, ByteView inner) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kShardScoped));
  enc.U64(map_version);
  enc.U32(shard_id);
  enc.Blob(inner);
  return enc.Take();
}

Bytes EncodeQueryRequest(const QueryRequest& req) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(req.op));
  enc.U64(req.account);
  enc.U64(req.from_height);
  enc.U64(req.to_height);
  return enc.Take();
}

Bytes EncodeAnnounceRequest(const AnnounceRequest& req) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kAnnounce));
  enc.Blob(req.block.Serialize());
  enc.Blob(req.block_cert.Serialize());
  enc.HashField(req.index_digest);
  enc.Blob(req.index_cert.Serialize());
  return enc.Take();
}

Result<Op> PeekOp(ByteView frame) {
  if (frame.empty() || !ValidOp(frame[0])) {
    return Result<Op>::Error("request: unknown op");
  }
  return static_cast<Op>(frame[0]);
}

Result<QueryRequest> DecodeQueryRequest(ByteView frame) {
  using R = Result<QueryRequest>;
  try {
    Decoder dec(frame);
    QueryRequest req;
    const std::uint8_t op = dec.U8();
    if (op != static_cast<std::uint8_t>(Op::kHistorical) &&
        op != static_cast<std::uint8_t>(Op::kAggregate)) {
      return R::Error("query request: wrong op");
    }
    req.op = static_cast<Op>(op);
    req.account = dec.U64();
    req.from_height = dec.U64();
    req.to_height = dec.U64();
    dec.ExpectEnd();
    return req;
  } catch (const DecodeError& e) {
    return R::Error(std::string("query request: ") + e.what());
  }
}

Result<AnnounceRequest> DecodeAnnounceRequest(ByteView frame) {
  using R = Result<AnnounceRequest>;
  try {
    Decoder dec(frame);
    if (dec.U8() != static_cast<std::uint8_t>(Op::kAnnounce)) {
      return R::Error("announce request: wrong op");
    }
    Bytes block_bytes = dec.Blob();
    Bytes bcert_bytes = dec.Blob();
    Hash256 digest = dec.HashField();
    Bytes icert_bytes = dec.Blob();
    dec.ExpectEnd();
    auto block = chain::Block::Deserialize(block_bytes);
    if (!block) return R(block.status());
    auto bcert = core::BlockCertificate::Deserialize(bcert_bytes);
    if (!bcert) return R(bcert.status());
    auto icert = core::IndexCertificate::Deserialize(icert_bytes);
    if (!icert) return R(icert.status());
    AnnounceRequest req;
    req.block = std::move(block.value());
    req.block_cert = std::move(bcert.value());
    req.index_digest = digest;
    req.index_cert = std::move(icert.value());
    return req;
  } catch (const DecodeError& e) {
    return R::Error(std::string("announce request: ") + e.what());
  }
}

Result<ShardScopedRequest> DecodeShardScopedRequest(ByteView frame) {
  using R = Result<ShardScopedRequest>;
  try {
    Decoder dec(frame);
    if (dec.U8() != static_cast<std::uint8_t>(Op::kShardScoped)) {
      return R::Error("shard-scoped request: wrong op");
    }
    ShardScopedRequest req;
    req.map_version = dec.U64();
    req.shard_id = dec.U32();
    req.inner = dec.Blob();
    dec.ExpectEnd();
    if (req.inner.empty()) {
      return R::Error("shard-scoped request: empty inner frame");
    }
    return req;
  } catch (const DecodeError& e) {
    return R::Error(std::string("shard-scoped request: ") + e.what());
  }
}

Bytes EncodeStatusReply(Code code, const std::string& message) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(code));
  enc.Str(message);
  return enc.Take();
}

Bytes EncodeTipReply(const TipInfo& tip) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.Blob(tip.header.Serialize());
  enc.Blob(tip.block_cert.Serialize());
  enc.HashField(tip.index_digest);
  enc.Blob(tip.index_cert.Serialize());
  return enc.Take();
}

Bytes EncodeQueryReply(std::uint64_t tip_height,
                       const query::HistoricalQueryProof& proof) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.U64(tip_height);
  enc.Blob(proof.Serialize());
  return enc.Take();
}

Bytes EncodeAckReply(std::uint64_t tip_height) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.U64(tip_height);
  return enc.Take();
}

Bytes EncodeShardMapReply(ByteView map_bytes) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.Blob(map_bytes);
  return enc.Take();
}

Result<Bytes> DecodeShardMapBody(ByteView body) {
  using R = Result<Bytes>;
  try {
    Decoder dec(body);
    Bytes map_bytes = dec.Blob();
    dec.ExpectEnd();
    if (map_bytes.empty()) return R::Error("shard map reply: empty map");
    return map_bytes;
  } catch (const DecodeError& e) {
    return R::Error(std::string("shard map reply: ") + e.what());
  }
}

Result<ReplyEnvelope> DecodeReplyEnvelope(ByteView frame) {
  using R = Result<ReplyEnvelope>;
  try {
    Decoder dec(frame);
    ReplyEnvelope env;
    const std::uint8_t code = dec.U8();
    if (code > static_cast<std::uint8_t>(Code::kStaleShard)) {
      return R::Error("reply: unknown status code");
    }
    env.code = static_cast<Code>(code);
    if (env.code == Code::kOk) {
      env.body = dec.Raw(dec.Remaining());
    } else {
      env.message = dec.Str();
      dec.ExpectEnd();
    }
    return env;
  } catch (const DecodeError& e) {
    return R::Error(std::string("reply: ") + e.what());
  }
}

Result<TipInfo> DecodeTipBody(ByteView body) {
  using R = Result<TipInfo>;
  try {
    Decoder dec(body);
    Bytes hdr_bytes = dec.Blob();
    Bytes bcert_bytes = dec.Blob();
    Hash256 digest = dec.HashField();
    Bytes icert_bytes = dec.Blob();
    dec.ExpectEnd();
    auto hdr = chain::BlockHeader::Deserialize(hdr_bytes);
    if (!hdr) return R(hdr.status());
    auto bcert = core::BlockCertificate::Deserialize(bcert_bytes);
    if (!bcert) return R(bcert.status());
    auto icert = core::IndexCertificate::Deserialize(icert_bytes);
    if (!icert) return R(icert.status());
    TipInfo tip;
    tip.header = hdr.value();
    tip.block_cert = std::move(bcert.value());
    tip.index_digest = digest;
    tip.index_cert = std::move(icert.value());
    return tip;
  } catch (const DecodeError& e) {
    return R::Error(std::string("tip reply: ") + e.what());
  }
}

Result<std::pair<std::uint64_t, query::HistoricalQueryProof>> DecodeQueryBody(
    ByteView body) {
  using R = Result<std::pair<std::uint64_t, query::HistoricalQueryProof>>;
  try {
    Decoder dec(body);
    std::uint64_t tip_height = dec.U64();
    Bytes proof_bytes = dec.Blob();
    dec.ExpectEnd();
    auto proof = query::HistoricalQueryProof::Deserialize(proof_bytes);
    if (!proof) return R(proof.status());
    return std::make_pair(tip_height, std::move(proof.value()));
  } catch (const DecodeError& e) {
    return R::Error(std::string("query reply: ") + e.what());
  }
}

Result<std::uint64_t> DecodeAckBody(ByteView body) {
  using R = Result<std::uint64_t>;
  try {
    Decoder dec(body);
    std::uint64_t tip_height = dec.U64();
    dec.ExpectEnd();
    return tip_height;
  } catch (const DecodeError& e) {
    return R::Error(std::string("ack reply: ") + e.what());
  }
}

Bytes EncodeHealthRequest() {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Op::kHealth));
  return enc.Take();
}

Bytes EncodeHealthReply(const HealthInfo& info) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.U64(info.tip_height);
  enc.U64(info.uptime_ms);
  enc.U64(info.inflight);
  enc.U64(info.served);
  enc.U64(info.shed);
  enc.Str(info.build);
  return enc.Take();
}

Result<HealthInfo> DecodeHealthBody(ByteView body) {
  using R = Result<HealthInfo>;
  try {
    Decoder dec(body);
    HealthInfo info;
    info.tip_height = dec.U64();
    info.uptime_ms = dec.U64();
    info.inflight = dec.U64();
    info.served = dec.U64();
    info.shed = dec.U64();
    info.build = dec.Str();
    dec.ExpectEnd();
    return info;
  } catch (const DecodeError& e) {
    return R::Error(std::string("health reply: ") + e.what());
  }
}

Bytes EncodeStatsReply(const obs::MetricsSnapshot& snap) {
  Encoder enc;
  enc.U8(static_cast<std::uint8_t>(Code::kOk));
  enc.U32(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, v] : snap.counters) {
    enc.Str(name);
    enc.U64(v);
  }
  enc.U32(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& [name, v] : snap.gauges) {
    enc.Str(name);
    enc.U64(static_cast<std::uint64_t>(v));  // two's complement round trip
  }
  enc.U32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    enc.Str(name);
    enc.U64(h.count);
    enc.U64(h.sum);
    enc.U64(h.min);
    enc.U64(h.max);
    enc.U32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const auto& [bound, n] : h.buckets) {
      enc.U64(bound);
      enc.U64(n);
    }
  }
  return enc.Take();
}

Result<obs::MetricsSnapshot> DecodeStatsBody(ByteView body) {
  using R = Result<obs::MetricsSnapshot>;
  try {
    Decoder dec(body);
    obs::MetricsSnapshot snap;
    const std::uint32_t n_counters = dec.U32();
    if (n_counters > kMaxStatsMetrics) return R::Error("stats reply: too many counters");
    for (std::uint32_t i = 0; i < n_counters; ++i) {
      std::string name = dec.Str();
      snap.counters[std::move(name)] = dec.U64();
    }
    const std::uint32_t n_gauges = dec.U32();
    if (n_gauges > kMaxStatsMetrics) return R::Error("stats reply: too many gauges");
    for (std::uint32_t i = 0; i < n_gauges; ++i) {
      std::string name = dec.Str();
      snap.gauges[std::move(name)] = static_cast<std::int64_t>(dec.U64());
    }
    const std::uint32_t n_hists = dec.U32();
    if (n_hists > kMaxStatsMetrics) return R::Error("stats reply: too many histograms");
    for (std::uint32_t i = 0; i < n_hists; ++i) {
      std::string name = dec.Str();
      obs::HistogramSnapshot h;
      h.count = dec.U64();
      h.sum = dec.U64();
      h.min = dec.U64();
      h.max = dec.U64();
      const std::uint32_t n_buckets = dec.U32();
      if (n_buckets > kMaxStatsBuckets) {
        return R::Error("stats reply: too many histogram buckets");
      }
      std::uint64_t prev_bound = 0;
      h.buckets.reserve(n_buckets);
      for (std::uint32_t b = 0; b < n_buckets; ++b) {
        const std::uint64_t bound = dec.U64();
        const std::uint64_t count = dec.U64();
        if (b != 0 && bound <= prev_bound) {
          return R::Error("stats reply: histogram buckets not ascending");
        }
        prev_bound = bound;
        h.buckets.emplace_back(bound, count);
      }
      snap.histograms[std::move(name)] = std::move(h);
    }
    dec.ExpectEnd();
    return snap;
  } catch (const DecodeError& e) {
    return R::Error(std::string("stats reply: ") + e.what());
  }
}

}  // namespace dcert::svc
