// Sharded LRU cache for encoded query replies, keyed by
// (op, account, window, tip height). Proof generation dominates the serving
// cost of repeated queries, so the SP caches whole reply frames; when a new
// certified block arrives every cached proof refers to a stale tip, so the
// server invalidates the cache wholesale (keys embed the tip height, making
// stale hits impossible even without the flush — the flush just returns the
// memory). Shards keep lock contention bounded under concurrent clients.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "obs/metrics.h"
#include "svc/protocol.h"

namespace dcert::svc {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // whole-cache flushes
  /// Flushes a shard-assigned server skipped because the announced block
  /// wrote nothing this shard owns (keys embed the tip height, so stale
  /// hits are impossible either way — the flush only returns memory).
  std::uint64_t invalidations_skipped = 0;

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ResponseCache {
 public:
  /// `capacity_per_shard` entries kept per shard, LRU-evicted.
  ResponseCache(std::size_t shards, std::size_t capacity_per_shard);

  /// Cache key for a query against a given certified tip.
  static Hash256 Key(Op op, std::uint64_t account, std::uint64_t from_height,
                     std::uint64_t to_height, std::uint64_t tip_height);

  /// Returns the cached reply frame and promotes it to most-recently-used.
  std::optional<Bytes> Lookup(const Hash256& key);
  void Insert(const Hash256& key, Bytes reply);
  /// Drops every entry (a new certified block arrived).
  void InvalidateAll();
  /// Records that a flush was deliberately not performed (shard-local
  /// invalidation decided the announcement was out-of-shard).
  void NoteInvalidationSkipped();

  /// Thin view over this instance's registry-backed counters (`svc.cache.*`
  /// in the metrics registry; exact for this cache instance).
  CacheStats Stats() const;

 private:
  struct Shard {
    std::mutex mu;
    std::list<std::pair<Hash256, Bytes>> lru;  // front = most recent
    std::unordered_map<Hash256, std::list<std::pair<Hash256, Bytes>>::iterator,
                       Hash256Hasher>
        map;
  };

  Shard& ShardFor(const Hash256& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_per_shard_;
  // Instance-owned sharded counters, also registered in the global metrics
  // registry (latest cache instance wins the `svc.cache.*` names there).
  std::shared_ptr<obs::Counter> hits_;
  std::shared_ptr<obs::Counter> misses_;
  std::shared_ptr<obs::Counter> evictions_;
  std::shared_ptr<obs::Counter> invalidations_;
  std::shared_ptr<obs::Counter> invalidations_skipped_;
};

}  // namespace dcert::svc
