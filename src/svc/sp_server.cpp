#include "svc/sp_server.h"

#include <chrono>
#include <thread>

#include "common/build_info.h"
#include "obs/trace.h"
#include "query/extraction.h"

namespace dcert::svc {

namespace {

/// Out-of-order announcements wait here at most; beyond it the announcer is
/// either malicious or hopelessly ahead, so shed the request.
constexpr std::size_t kMaxPendingAnnouncements = 1024;

}  // namespace

SpServer::SpServer(SpServerConfig config)
    : config_(config),
      start_time_(std::chrono::steady_clock::now()),
      pool_(config.workers),
      cache_(config.cache_shards, config.cache_capacity_per_shard),
      index_("historical"),
      served_(std::make_shared<obs::Counter>()),
      shed_(std::make_shared<obs::Counter>()),
      errors_(std::make_shared<obs::Counter>()),
      blocks_applied_(std::make_shared<obs::Counter>()),
      announce_rejected_(std::make_shared<obs::Counter>()),
      shard_rejects_(std::make_shared<obs::Counter>()),
      inflight_gauge_(std::make_shared<obs::Gauge>()),
      lat_tip_ns_(std::make_shared<obs::Histogram>()),
      lat_historical_ns_(std::make_shared<obs::Histogram>()),
      lat_aggregate_ns_(std::make_shared<obs::Histogram>()),
      lat_announce_ns_(std::make_shared<obs::Histogram>()),
      lat_stats_ns_(std::make_shared<obs::Histogram>()) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Register("svc.server.served", served_);
  reg.Register("svc.server.shed", shed_);
  reg.Register("svc.server.errors", errors_);
  reg.Register("svc.server.blocks_applied", blocks_applied_);
  reg.Register("svc.server.announce_rejected", announce_rejected_);
  reg.Register("svc.server.shard_rejects", shard_rejects_);
  reg.Register("svc.server.inflight", inflight_gauge_);
  reg.Register("svc.latency.tip_ns", lat_tip_ns_);
  reg.Register("svc.latency.historical_ns", lat_historical_ns_);
  reg.Register("svc.latency.aggregate_ns", lat_aggregate_ns_);
  reg.Register("svc.latency.announce_ns", lat_announce_ns_);
  reg.Register("svc.latency.stats_ns", lat_stats_ns_);
  // Build identity + uptime gauges so fleet stats merges can spot version
  // skew and per-replica age (`svc.server.uptime_ms` updates on kStats).
  common::RegisterBuildInfoMetrics();
  uptime_gauge_ = reg.GetGauge("svc.server.uptime_ms");
}

std::uint64_t SpServer::UptimeMs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

SpServer::~SpServer() { Shutdown(); }

Status SpServer::Serve(ServerTransport& transport) {
  transport_ = &transport;
  return transport.Start([this](Bytes request, Respond respond) {
    HandleFrame(std::move(request), std::move(respond));
  });
}

void SpServer::Shutdown() {
  {
    std::unique_lock<std::mutex> lk(admit_mu_);
    draining_ = true;
    drain_cv_.wait(lk, [this] { return in_flight_ == 0; });
  }
  if (transport_ != nullptr) {
    transport_->Stop();
    transport_ = nullptr;
  }
}

void SpServer::HandleFrame(Bytes request, Respond respond) {
  const char* shed_reason = nullptr;
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
    if (draining_ || in_flight_ >= config_.max_queue) {
      shed_reason = draining_ ? "draining" : "overloaded";
    } else {
      ++in_flight_;
    }
  }
  if (shed_reason != nullptr) {
    // The busy reply is written after admit_mu_ drops: a stuck client's
    // socket can only stall its own transport thread, never admission for
    // every other connection.
    shed_->Add(1);
    respond(EncodeStatusReply(Code::kBusy, shed_reason));
    return;
  }
  // in_flight_ under admit_mu_ stays the source of truth for admission and
  // drain; the gauge is a lock-free mirror for the live stats endpoint.
  inflight_gauge_->Add(1);
  pool_.Submit(
      [this, request = std::move(request), respond = std::move(respond)] {
        Bytes reply = Process(request);
        respond(std::move(reply));
        inflight_gauge_->Sub(1);
        std::lock_guard<std::mutex> lk(admit_mu_);
        --in_flight_;
        if (in_flight_ == 0) drain_cv_.notify_all();
      });
}

Bytes SpServer::Process(const Bytes& request) {
  if (config_.debug_process_delay_ms != 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.debug_process_delay_ms));
  }
  auto op = PeekOp(request);
  if (!op.ok()) {
    errors_->Add(1);
    return EncodeStatusReply(Code::kError, op.message());
  }
  switch (op.value()) {
    case Op::kTipFetch: {
      obs::TraceSpan span("svc.tip_fetch", lat_tip_ns_);
      return ProcessTipFetch();
    }
    case Op::kHistorical:
    case Op::kAggregate: {
      auto req = DecodeQueryRequest(request);
      if (!req.ok()) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, req.message());
      }
      // A sharded server serves only what it owns, even for plain (router-
      // forwarded) queries; the rejection is retryable because the client's
      // routing data, not the query, is what's wrong.
      if (config_.shard.Sharded()) {
        if (!config_.shard.OwnsKey(req.value().account)) {
          return RejectShard("query key " + std::to_string(req.value().account) +
                             " not owned by shard " +
                             std::to_string(config_.shard.shard_id));
        }
        if (!config_.shard.OwnsWindow(req.value().from_height,
                                      req.value().to_height)) {
          return RejectShard("query window outside shard height band");
        }
      }
      obs::TraceSpan span(
          req.value().op == Op::kHistorical ? "svc.historical" : "svc.aggregate",
          req.value().op == Op::kHistorical ? lat_historical_ns_
                                            : lat_aggregate_ns_);
      return ProcessQuery(req.value());
    }
    case Op::kAnnounce: {
      auto req = DecodeAnnounceRequest(request);
      if (!req.ok()) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, req.message());
      }
      obs::TraceSpan span("svc.announce", lat_announce_ns_);
      Status st = Announce(req.value());
      if (!st) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, st.message());
      }
      served_->Add(1);
      std::shared_lock<std::shared_mutex> lk(state_mu_);
      return EncodeAckReply(tip_ ? tip_->header.height : 0);
    }
    case Op::kStats: {
      obs::TraceSpan span("svc.stats", lat_stats_ns_);
      served_->Add(1);
      uptime_gauge_->Set(static_cast<std::int64_t>(UptimeMs()));
      return EncodeStatsReply(obs::MetricsRegistry::Global().Snapshot());
    }
    case Op::kHealth: {
      return ProcessHealth();
    }
    case Op::kShardMap: {
      if (config_.shard_map.empty()) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, "no shard map configured");
      }
      served_->Add(1);
      return EncodeShardMapReply(config_.shard_map);
    }
    case Op::kShardScoped: {
      auto req = DecodeShardScopedRequest(request);
      if (!req.ok()) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, req.message());
      }
      return ProcessShardScoped(req.value());
    }
  }
  errors_->Add(1);
  return EncodeStatusReply(Code::kError, "unhandled op");
}

Bytes SpServer::RejectShard(const std::string& message) {
  shard_rejects_->Add(1);
  return EncodeStatusReply(Code::kStaleShard, message);
}

Bytes SpServer::ProcessShardScoped(const ShardScopedRequest& req) {
  if (!config_.shard.Sharded()) {
    errors_->Add(1);
    return EncodeStatusReply(Code::kError,
                             "shard-scoped request to unsharded server");
  }
  if (req.map_version != config_.shard.map_version) {
    return RejectShard("stale shard map: client v" +
                       std::to_string(req.map_version) + ", server v" +
                       std::to_string(config_.shard.map_version));
  }
  if (req.shard_id != config_.shard.shard_id) {
    return RejectShard("misrouted: addressed shard " +
                       std::to_string(req.shard_id) + ", this is shard " +
                       std::to_string(config_.shard.shard_id));
  }
  auto inner_op = PeekOp(req.inner);
  if (!inner_op.ok()) {
    errors_->Add(1);
    return EncodeStatusReply(Code::kError, "shard-scoped: " + inner_op.message());
  }
  switch (inner_op.value()) {
    case Op::kTipFetch: {
      obs::TraceSpan span("svc.tip_fetch", lat_tip_ns_);
      return ProcessTipFetch();
    }
    case Op::kHistorical:
    case Op::kAggregate: {
      auto inner = DecodeQueryRequest(req.inner);
      if (!inner.ok()) {
        errors_->Add(1);
        return EncodeStatusReply(Code::kError, inner.message());
      }
      if (!config_.shard.OwnsKey(inner.value().account)) {
        return RejectShard("query key " +
                           std::to_string(inner.value().account) +
                           " not owned by shard " +
                           std::to_string(config_.shard.shard_id));
      }
      if (!config_.shard.OwnsWindow(inner.value().from_height,
                                    inner.value().to_height)) {
        return RejectShard("query window outside shard height band");
      }
      obs::TraceSpan span(inner.value().op == Op::kHistorical
                              ? "svc.historical"
                              : "svc.aggregate",
                          inner.value().op == Op::kHistorical
                              ? lat_historical_ns_
                              : lat_aggregate_ns_);
      return ProcessQuery(inner.value());
    }
    default: {
      // Announce/stats/map fetches are process-global concerns; scoping them
      // to a shard would only mask routing bugs.
      errors_->Add(1);
      return EncodeStatusReply(Code::kError,
                               "shard-scoped: inner op not shardable");
    }
  }
}

Bytes SpServer::ProcessHealth() {
  // Deliberately cheap: one shared lock for the tip height, the rest from
  // lock-free counters — health probes must stay serviceable under load.
  HealthInfo info;
  {
    std::shared_lock<std::shared_mutex> lk(state_mu_);
    info.tip_height = tip_ ? tip_->header.height : 0;
  }
  info.uptime_ms = UptimeMs();
  uptime_gauge_->Set(static_cast<std::int64_t>(info.uptime_ms));
  info.inflight = static_cast<std::uint64_t>(inflight_gauge_->Value());
  info.served = served_->Value();
  info.shed = shed_->Value();
  info.build = common::BuildString();
  served_->Add(1);
  return EncodeHealthReply(info);
}

Bytes SpServer::ProcessTipFetch() {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  if (!tip_) {
    errors_->Add(1);
    return EncodeStatusReply(Code::kError, "no certified tip yet");
  }
  served_->Add(1);
  return EncodeTipReply(*tip_);
}

Bytes SpServer::ProcessQuery(const QueryRequest& req) {
  // Shared lock spans the tip read and the proof generation so the proof is
  // always consistent with the tip height stamped into the reply.
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  if (!tip_) {
    errors_->Add(1);
    return EncodeStatusReply(Code::kError, "no certified tip yet");
  }
  const std::uint64_t tip_height = tip_->header.height;
  Hash256 key;
  if (config_.enable_cache) {
    key = ResponseCache::Key(req.op, req.account, req.from_height,
                             req.to_height, tip_height);
    if (auto hit = cache_.Lookup(key)) {
      served_->Add(1);
      return std::move(*hit);
    }
  }
  query::HistoricalQueryProof proof =
      req.op == Op::kHistorical
          ? index_.Query(req.account, req.from_height, req.to_height)
          : index_.AggregateQuery(req.account, req.from_height, req.to_height);
  Bytes reply = EncodeQueryReply(tip_height, proof);
  if (config_.enable_cache) cache_.Insert(key, reply);
  served_->Add(1);
  return reply;
}

Status SpServer::Announce(const AnnounceRequest& req) {
  std::unique_lock<std::shared_mutex> lk(state_mu_);
  return AnnounceLocked(req);
}

Status SpServer::Rehydrate(const chain::BlockStore& blocks,
                           const core::CertificateStore& certs) {
  std::unique_lock<std::shared_mutex> lk(state_mu_);
  if (next_height_ != 1 || tip_) {
    return Status::Error("rehydrate: server has already applied blocks");
  }
  if (blocks.Count() == 0) {
    return Status::Error("rehydrate: empty block store");
  }
  if (certs.Count() + 1 < blocks.Count()) {
    return Status::Error(
        "rehydrate: cert store behind block store (reopen the durable "
        "issuer to reconcile first)");
  }
  if (blocks.BaseHeight() > 0) {
    return Status::Error(
        "rehydrate: history below height " +
        std::to_string(blocks.BaseHeight()) +
        " was compacted; rehydrate from a checkpoint instead");
  }
  auto genesis = blocks.Get(0);
  if (!genesis) return genesis.status();
  return RehydrateRange(blocks, certs, 1, genesis.value().header);
}

Status SpServer::RehydrateRange(const chain::BlockStore& blocks,
                                const core::CertificateStore& certs,
                                std::uint64_t from,
                                chain::BlockHeader prev_hdr) {
  // Envelope signatures are checked in chunked crypto::VerifyBatch dispatches
  // (every chunk shares one IAS point term); chain-linkage and digest checks
  // stay per height, in order, with the same error statuses as before.
  constexpr std::uint64_t kRehydrateChunk = 64;
  std::vector<core::BlockCertificate> chunk_certs;
  std::vector<const core::BlockCertificate*> chunk_ptrs;
  for (std::uint64_t chunk = from; chunk < blocks.Count();
       chunk += kRehydrateChunk) {
    const std::uint64_t chunk_end =
        std::min(blocks.Count(), chunk + kRehydrateChunk);
    chunk_certs.clear();
    for (std::uint64_t h = chunk; h < chunk_end; ++h) {
      auto cert = certs.Get(h - 1);
      if (!cert) return cert.status();
      chunk_certs.push_back(std::move(cert.value()));
    }
    chunk_ptrs.clear();
    for (const auto& c : chunk_certs) chunk_ptrs.push_back(&c);
    std::vector<Status> env = core::VerifyCertificateEnvelopesBatch(
        chunk_ptrs.data(), chunk_ptrs.size(), config_.expected_measurement);
    for (std::uint64_t h = chunk; h < chunk_end; ++h) {
      auto blk = blocks.Get(h);
      if (!blk) return blk.status();
      const core::BlockCertificate& cert = chunk_certs[h - chunk];
      const chain::BlockHeader& hdr = blk.value().header;
      if (hdr.height != h || hdr.prev_hash != prev_hdr.Hash()) {
        return Status::Error("rehydrate: stored chain broken at height " +
                             std::to_string(h));
      }
      // Trust nothing in the store blindly: the same certificate validation a
      // live announcement gets.
      if (cert.digest != hdr.Hash()) {
        return Status::Error(
            "rehydrate: certificate does not sign stored block at height " +
            std::to_string(h));
      }
      if (!env[h - chunk]) {
        return env[h - chunk].WithContext("rehydrate height " +
                                          std::to_string(h));
      }
      index_.ApplyBlockCapturingAux(blk.value());
      TipInfo tip;
      tip.header = hdr;
      tip.block_cert = cert;
      tip.index_digest = index_.CurrentDigest();
      // The durable stores hold block certificates only, so the restored tip
      // carries the block certificate in the index slot as a placeholder: it
      // wire-encodes (a default certificate cannot), and a client's
      // AcceptIndexCert rejects it (its digest signs the header, not
      // H(header || index digest)) — fail-safe until the next live
      // announcement brings a real index certificate.
      tip.index_cert = cert;
      tip_ = std::move(tip);
      ++next_height_;
      blocks_applied_->Add(1);
      prev_hdr = hdr;
    }
  }
  cache_.InvalidateAll();
  return Status::Ok();
}

Status SpServer::RestoreFromCheckpointLocked(const ckpt::Checkpoint& ck) {
  if (next_height_ != 1 || tip_) {
    return Status::Error("rehydrate: server has already applied blocks");
  }
  if (Status st = ckpt::VerifyCheckpoint(ck, config_.expected_measurement);
      !st) {
    return st.WithContext("rehydrate checkpoint");
  }
  if (!ck.has_index) {
    return Status::Error("rehydrate: checkpoint carries no index content");
  }
  if (Status st = index_.RestoreContent(ck.index_content); !st) {
    return st.WithContext("rehydrate index content");
  }
  if (index_.CurrentDigest() != ck.index_digest) {
    return Status::Error(
        "rehydrate: restored index content does not reproduce the "
        "checkpoint's certified digest");
  }
  TipInfo tip;
  tip.header = ck.header;
  tip.block_cert = ck.block_cert;
  tip.index_digest = ck.index_digest;
  // When the checkpoint carries a real index certificate (SP-written ones
  // do) and no tail follows, serve it directly — queries verify
  // immediately. RehydrateRange overwrites this with the fail-safe
  // placeholder per replayed block: a stale index cert cannot cover an
  // advanced index.
  tip.index_cert = ck.has_index_cert ? ck.index_cert : ck.block_cert;
  tip_ = std::move(tip);
  next_height_ = ck.height + 1;
  blocks_applied_->Add(1);  // the checkpoint stands in for its whole prefix
  return Status::Ok();
}

Status SpServer::RehydrateFromCheckpoint(const ckpt::Checkpoint& ck) {
  std::unique_lock<std::shared_mutex> lk(state_mu_);
  if (Status st = RestoreFromCheckpointLocked(ck); !st) return st;
  cache_.InvalidateAll();
  return Status::Ok();
}

Status SpServer::RehydrateFromCheckpoint(const ckpt::Checkpoint& ck,
                                         const chain::BlockStore& blocks,
                                         const core::CertificateStore& certs) {
  std::unique_lock<std::shared_mutex> lk(state_mu_);
  if (next_height_ != 1 || tip_) {
    return Status::Error("rehydrate: server has already applied blocks");
  }
  if (blocks.Count() <= ck.height) {
    return Status::Error("rehydrate: block store (" +
                         std::to_string(blocks.Count()) +
                         " blocks) is behind checkpoint height " +
                         std::to_string(ck.height));
  }
  if (blocks.BaseHeight() > ck.height) {
    return Status::Error(
        "rehydrate: log history was compacted above checkpoint height " +
        std::to_string(ck.height));
  }
  if (certs.Count() + 1 < blocks.Count()) {
    return Status::Error(
        "rehydrate: cert store behind block store (reopen the durable "
        "issuer to reconcile first)");
  }
  // Anchor the checkpoint to the durable chain: the stored block at its
  // height must be the certified tip it claims.
  auto anchor = blocks.Get(ck.height);
  if (!anchor) return anchor.status();
  if (anchor.value().header.Hash() != ck.header.Hash()) {
    return Status::Error(
        "rehydrate: checkpoint tip does not match the stored block at "
        "height " + std::to_string(ck.height));
  }
  if (Status st = RestoreFromCheckpointLocked(ck); !st) return st;
  if (Status st = RehydrateRange(blocks, certs, ck.height + 1, ck.header);
      !st) {
    return st;
  }
  obs::MetricsRegistry::Global()
      .GetGauge("ci.ckpt.sp_tail_replayed")
      ->Set(static_cast<std::int64_t>(blocks.Count() - 1 - ck.height));
  return Status::Ok();
}

Result<ckpt::Checkpoint> SpServer::ExportCheckpoint() const {
  using R = Result<ckpt::Checkpoint>;
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  if (!tip_) return R::Error("export checkpoint: no certified tip yet");
  ckpt::Checkpoint ck;
  ck.height = tip_->header.height;
  ck.header = tip_->header;
  ck.block_cert = tip_->block_cert;
  ck.has_index = true;
  ck.index_digest = tip_->index_digest;
  ck.index_content = index_.SerializeContent();
  // The rehydrate placeholder is the block certificate in the index slot;
  // a real index certificate signs H(header || digest) instead. Only carry
  // the real thing — a checkpointed placeholder would verify-fail on load.
  if (tip_->index_cert.digest ==
      core::IndexCertDigest(tip_->header.Hash(), tip_->index_digest)) {
    ck.has_index_cert = true;
    ck.index_cert = tip_->index_cert;
  }
  return ck;
}

Status SpServer::AnnounceLocked(const AnnounceRequest& req) {
  const chain::BlockHeader& hdr = req.block.header;
  auto reject = [this](Status st) {
    announce_rejected_->Add(1);
    return st;
  };
  if (hdr.height < next_height_) {
    return reject(Status::Error("announce: stale height " +
                                std::to_string(hdr.height)));
  }
  // Validate the certificates like a superlight client would: the block
  // certificate must sign this exact header, the index certificate must bind
  // the claimed digest to it, both from the pinned enclave.
  if (req.block_cert.digest != hdr.Hash()) {
    return reject(Status::Error("announce: block cert does not sign header"));
  }
  // Both certificate envelopes (four Schnorr signatures) verify in one
  // crypto::VerifyBatch dispatch; error precedence matches the sequential
  // per-certificate checks.
  const core::BlockCertificate* certs[2] = {&req.block_cert, &req.index_cert};
  std::vector<Status> env =
      core::VerifyCertificateEnvelopesBatch(certs, 2,
                                            config_.expected_measurement);
  if (!env[0]) {
    return reject(env[0].WithContext("announce: block cert"));
  }
  if (req.index_cert.digest !=
      core::IndexCertDigest(hdr.Hash(), req.index_digest)) {
    return reject(Status::Error("announce: index cert does not bind digest"));
  }
  if (!env[1]) {
    return reject(env[1].WithContext("announce: index cert"));
  }
  if (pending_.size() >= kMaxPendingAnnouncements) {
    return reject(Status::Error("announce: too many out-of-order blocks"));
  }
  pending_[hdr.height] = req;

  bool applied_any = false;
  bool wrote_in_shard = false;
  while (true) {
    auto it = pending_.find(next_height_);
    if (it == pending_.end()) break;
    const AnnounceRequest& r = it->second;
    if (tip_ && r.block.header.prev_hash != tip_->header.Hash()) {
      pending_.erase(it);
      return reject(Status::Error("announce: block does not extend tip"));
    }
    // Shard-local invalidation: announcements fan out to every shard of a
    // fleet, but only blocks that write keys this shard owns (inside its
    // height band) can affect replies it would serve. Deciding here, per
    // applied block, keeps the flush decision independent of how many other
    // shards share the process or the fleet.
    if (config_.shard.Sharded()) {
      for (const query::HistEntry& e :
           query::ExtractHistoricalWrites(r.block)) {
        if (config_.shard.OwnsWrite(e.account_word, r.block.header.height)) {
          wrote_in_shard = true;
          break;
        }
      }
    } else {
      wrote_in_shard = true;  // unsharded servers own everything
    }
    index_.ApplyBlockCapturingAux(r.block);
    if (index_.CurrentDigest() != r.index_digest) {
      // The CI certified a different index content than this block produces
      // — the announcement stream is inconsistent; the live index is now
      // unusable for certified serving.
      pending_.erase(it);
      return reject(
          Status::Error("announce: index digest mismatch after apply"));
    }
    TipInfo tip;
    tip.header = r.block.header;
    tip.block_cert = r.block_cert;
    tip.index_digest = r.index_digest;
    tip.index_cert = r.index_cert;
    tip_ = std::move(tip);
    pending_.erase(it);
    ++next_height_;
    blocks_applied_->Add(1);
    applied_any = true;
  }
  // Every cached proof refers to an older tip once a block applies. Cache
  // keys embed the tip height, so skipping the flush for out-of-shard blocks
  // can never serve a stale hit — old entries just age out via LRU instead
  // of being dropped eagerly.
  if (applied_any) {
    if (wrote_in_shard) {
      cache_.InvalidateAll();
    } else {
      cache_.NoteInvalidationSkipped();
    }
  }
  return Status::Ok();
}

SpServerStats SpServer::Stats() const {
  SpServerStats s;
  s.served = served_->Value();
  s.shed = shed_->Value();
  s.errors = errors_->Value();
  s.blocks_applied = blocks_applied_->Value();
  s.announce_rejected = announce_rejected_->Value();
  s.shard_rejects = shard_rejects_->Value();
  s.cache = cache_.Stats();
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  s.tip_height = tip_ ? tip_->header.height : 0;
  return s;
}

}  // namespace dcert::svc
