#include "svc/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace dcert::svc {

namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide wire-level counters across every TCP transport (server and
/// client sides share them; frame counts include the 4-byte length prefix in
/// the byte totals).
struct NetMetrics {
  std::shared_ptr<obs::Counter> frames_in;
  std::shared_ptr<obs::Counter> frames_out;
  std::shared_ptr<obs::Counter> bytes_in;
  std::shared_ptr<obs::Counter> bytes_out;
  std::shared_ptr<obs::Counter> accepted;
  std::shared_ptr<obs::Counter> rejected_over_cap;
  std::shared_ptr<obs::Counter> dials;

  static NetMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static NetMetrics* m = new NetMetrics{
        reg.GetCounter("net.tcp.frames_in"),
        reg.GetCounter("net.tcp.frames_out"),
        reg.GetCounter("net.tcp.bytes_in"),
        reg.GetCounter("net.tcp.bytes_out"),
        reg.GetCounter("net.tcp.accepted"),
        reg.GetCounter("net.tcp.rejected_over_cap"),
        reg.GetCounter("net.tcp.dials")};
    return *m;
  }
};

/// Writes all of `data` to `fd`; false on any error (peer gone, fd closed,
/// or SO_SNDTIMEO expired). Server-side reply path.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadAll(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

void EncodeLen(std::uint32_t n, std::uint8_t out[4]) {
  out[0] = static_cast<std::uint8_t>(n);
  out[1] = static_cast<std::uint8_t>(n >> 8);
  out[2] = static_cast<std::uint8_t>(n >> 16);
  out[3] = static_cast<std::uint8_t>(n >> 24);
}

bool WriteFrame(int fd, ByteView payload) {
  // Refuse oversized payloads before any byte hits the wire: the u32 length
  // prefix would otherwise silently truncate sizes past 2^32, and the peer
  // enforces kMaxFrameBytes on read anyway.
  if (payload.size() > kMaxFrameBytes) return false;
  std::uint8_t len[4];
  EncodeLen(static_cast<std::uint32_t>(payload.size()), len);
  if (!WriteAll(fd, len, 4) || !WriteAll(fd, payload.data(), payload.size())) {
    return false;
  }
  auto& nm = NetMetrics::Get();
  nm.frames_out->Add(1);
  nm.bytes_out->Add(4 + payload.size());
  return true;
}

/// Reads one frame; false on EOF/error/oversized frame.
bool ReadFrame(int fd, Bytes& out) {
  std::uint8_t len[4];
  if (!ReadAll(fd, len, 4)) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(len[0]) |
                          (static_cast<std::uint32_t>(len[1]) << 8) |
                          (static_cast<std::uint32_t>(len[2]) << 16) |
                          (static_cast<std::uint32_t>(len[3]) << 24);
  if (n > kMaxFrameBytes) return false;
  out.resize(n);
  if (n != 0 && !ReadAll(fd, out.data(), n)) return false;
  auto& nm = NetMetrics::Get();
  nm.frames_in->Add(1);
  nm.bytes_in->Add(4 + n);
  return true;
}

// --- Deadline-bounded client I/O ----------------------------------------
// The client socket stays in non-blocking mode; each send/recv that would
// block polls for readiness with the time remaining until the deadline.

enum class IoResult { kOk, kTimeout, kError };

IoResult PollFor(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return IoResult::kTimeout;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count();
    if (ms > 60000) ms = 60000;
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, static_cast<int>(ms) + 1);
    if (rc > 0) return IoResult::kOk;  // ready (or error/hup: I/O reports it)
    if (rc == 0) continue;             // slice expired; re-check the deadline
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
}

IoResult SendAll(int fd, const std::uint8_t* data, std::size_t n,
                 Clock::time_point deadline) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      IoResult r = PollFor(fd, POLLOUT, deadline);
      if (r != IoResult::kOk) return r;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return IoResult::kError;
  }
  return IoResult::kOk;
}

IoResult RecvAll(int fd, std::uint8_t* data, std::size_t n,
                 Clock::time_point deadline) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, MSG_DONTWAIT);
    if (r > 0) {
      data += r;
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return IoResult::kError;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      IoResult w = PollFor(fd, POLLIN, deadline);
      if (w != IoResult::kOk) return w;
      continue;
    }
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
  return IoResult::kOk;
}

IoResult ReadFrameDeadline(int fd, Bytes& out, Clock::time_point deadline) {
  std::uint8_t len[4];
  if (IoResult r = RecvAll(fd, len, 4, deadline); r != IoResult::kOk) return r;
  const std::uint32_t n = static_cast<std::uint32_t>(len[0]) |
                          (static_cast<std::uint32_t>(len[1]) << 8) |
                          (static_cast<std::uint32_t>(len[2]) << 16) |
                          (static_cast<std::uint32_t>(len[3]) << 24);
  if (n > kMaxFrameBytes) return IoResult::kError;
  out.resize(n);
  if (n != 0) {
    if (IoResult r = RecvAll(fd, out.data(), n, deadline); r != IoResult::kOk) {
      return r;
    }
  }
  auto& nm = NetMetrics::Get();
  nm.frames_in->Add(1);
  nm.bytes_in->Add(4 + n);
  return IoResult::kOk;
}

}  // namespace

TcpServerTransport::~TcpServerTransport() { Stop(); }

Status TcpServerTransport::Start(FrameHandler handler) {
  if (started_) return Status::Error("tcp server: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(std::string("tcp server: socket: ") +
                         std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error(std::string("tcp server: bind: ") +
                         std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error(std::string("tcp server: listen: ") +
                         std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  handler_ = std::move(handler);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void TcpServerTransport::AcceptLoop() {
  while (!stopping_.load()) {
    // Reap readers that exited since the last accept so a connection-churn
    // workload cannot accumulate joinable-but-dead threads.
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      done.swap(finished_);
    }
    for (auto& t : done) {
      if (t.joinable()) t.join();
    }

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion is transient (readers release fds as clients
        // disconnect): back off briefly instead of killing the server.
        accept_transient_errors_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listen socket closed by Stop, or a fatal error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.write_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = config_.write_timeout_ms / 1000;
      tv.tv_usec = (config_.write_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      rejected_over_cap_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::Get().rejected_over_cap->Add(1);
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    Entry entry;
    entry.conn = conn;
    entry.reader = std::thread([this, conn] { ReaderLoop(conn); });
    conns_.emplace(conn->id, std::move(entry));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::Get().accepted->Add(1);
  }
}

void TcpServerTransport::ReaderLoop(std::shared_ptr<Conn> conn) {
  Bytes frame;
  while (ReadFrame(conn->fd, frame)) {
    // The respond closure shares ownership of the connection so replies
    // written after the reader exits (or after Stop) stay memory-safe; the
    // open flag under write_mu makes them silent no-ops instead.
    Respond respond = [conn](Bytes reply) {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      if (!conn->open) return;
      if (!WriteFrame(conn->fd, reply)) {
        // Peer gone or SO_SNDTIMEO expired: poison the connection so the
        // blocked reader wakes up and reaps it.
        conn->open = false;
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    };
    handler_(std::move(frame), std::move(respond));
    frame = Bytes();
  }
  // Client EOF, error, or Stop: release the fd here (the reader is the sole
  // closer, after it has stopped reading) and drop our registry entry so
  // churn leaves fd and thread counts flat.
  {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    conn->open = false;
    if (!conn->fd_closed) {
      ::close(conn->fd);
      conn->fd_closed = true;
    }
  }
  std::lock_guard<std::mutex> lk(conns_mu_);
  auto it = conns_.find(conn->id);
  if (it != conns_.end()) {
    // Still registered: move our own thread handle to the finished list for
    // the accept loop (or Stop) to join. If Stop already took the map, it
    // owns the handle and will join us directly.
    finished_.push_back(std::move(it->second.reader));
    conns_.erase(it);
  }
}

void TcpServerTransport::Stop() {
  if (!started_) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unordered_map<std::uint64_t, Entry> conns;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
    finished.swap(finished_);
  }
  for (auto& [id, entry] : conns) {
    std::lock_guard<std::mutex> lk(entry.conn->write_mu);
    entry.conn->open = false;
    // shutdown (not close) unblocks the reader, which closes the fd itself.
    if (!entry.conn->fd_closed) ::shutdown(entry.conn->fd, SHUT_RDWR);
  }
  for (auto& [id, entry] : conns) {
    if (entry.reader.joinable()) entry.reader.join();
  }
  for (auto& t : finished) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
  started_ = false;
}

TcpServerStats TcpServerTransport::Stats() const {
  TcpServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_over_cap = rejected_over_cap_.load(std::memory_order_relaxed);
  s.accept_transient_errors =
      accept_transient_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(conns_mu_);
  s.open_connections = conns_.size();
  return s;
}

Result<std::unique_ptr<ClientTransport>> TcpClientTransport::Connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds connect_timeout) {
  using R = Result<std::unique_ptr<ClientTransport>>;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return R(ConnectionError(std::string("tcp client: socket: ") +
                             std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return R::Error("tcp client: bad host address " + host);
  }
  // Non-blocking connect so a black-holed peer cannot hang the dial; the
  // socket stays non-blocking for the deadline-bounded Call path.
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  const auto deadline = Clock::now() + connect_timeout;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      return R(ConnectionError(std::string("tcp client: connect: ") +
                               std::strerror(err)));
    }
    IoResult r = PollFor(fd, POLLOUT, deadline);
    if (r == IoResult::kTimeout) {
      ::close(fd);
      return R(TimeoutError("tcp client: connect to " + host + " timed out"));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (r == IoResult::kError ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      ::close(fd);
      return R(ConnectionError(std::string("tcp client: connect: ") +
                               std::strerror(err != 0 ? err : errno)));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  NetMetrics::Get().dials->Add(1);
  return R(std::unique_ptr<ClientTransport>(new TcpClientTransport(fd)));
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Bytes> TcpClientTransport::Call(ByteView request,
                                       std::chrono::milliseconds deadline) {
  if (broken_) {
    return Result<Bytes>(ConnectionError(
        "tcp client: connection broken by an earlier timeout/error"));
  }
  if (request.size() > kMaxFrameBytes) {
    // Nothing was written, so the connection stays usable.
    return Result<Bytes>::Error(
        "tcp client: request of " + std::to_string(request.size()) +
        " bytes exceeds the frame cap (" + std::to_string(kMaxFrameBytes) +
        ")");
  }
  const auto dl = Clock::now() + deadline;
  std::uint8_t len[4];
  EncodeLen(static_cast<std::uint32_t>(request.size()), len);
  IoResult r = SendAll(fd_, len, 4, dl);
  if (r == IoResult::kOk && !request.empty()) {
    r = SendAll(fd_, request.data(), request.size(), dl);
  }
  if (r != IoResult::kOk) {
    broken_ = true;
    return Result<Bytes>(
        r == IoResult::kTimeout
            ? TimeoutError("tcp client: send did not complete within deadline")
            : ConnectionError("tcp client: write failed (server gone?)"));
  }
  {
    auto& nm = NetMetrics::Get();
    nm.frames_out->Add(1);
    nm.bytes_out->Add(4 + request.size());
  }
  Bytes reply;
  r = ReadFrameDeadline(fd_, reply, dl);
  if (r != IoResult::kOk) {
    broken_ = true;
    return Result<Bytes>(
        r == IoResult::kTimeout
            ? TimeoutError("tcp client: no reply within deadline")
            : ConnectionError("tcp client: read failed (server gone?)"));
  }
  return reply;
}

}  // namespace dcert::svc
