#include "svc/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dcert::svc {

namespace {

/// Writes all of `data` to `fd`; false on any error (peer gone, fd closed).
bool WriteAll(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadAll(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool WriteFrame(int fd, ByteView payload) {
  std::uint8_t len[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  len[0] = static_cast<std::uint8_t>(n);
  len[1] = static_cast<std::uint8_t>(n >> 8);
  len[2] = static_cast<std::uint8_t>(n >> 16);
  len[3] = static_cast<std::uint8_t>(n >> 24);
  return WriteAll(fd, len, 4) && WriteAll(fd, payload.data(), payload.size());
}

/// Reads one frame; false on EOF/error/oversized frame.
bool ReadFrame(int fd, Bytes& out) {
  std::uint8_t len[4];
  if (!ReadAll(fd, len, 4)) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(len[0]) |
                          (static_cast<std::uint32_t>(len[1]) << 8) |
                          (static_cast<std::uint32_t>(len[2]) << 16) |
                          (static_cast<std::uint32_t>(len[3]) << 24);
  if (n > kMaxFrameBytes) return false;
  out.resize(n);
  return n == 0 || ReadAll(fd, out.data(), n);
}

}  // namespace

TcpServerTransport::~TcpServerTransport() { Stop(); }

Status TcpServerTransport::Start(FrameHandler handler) {
  if (started_) return Status::Error("tcp server: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(std::string("tcp server: socket: ") +
                         std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error(std::string("tcp server: bind: ") +
                         std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error(std::string("tcp server: listen: ") +
                         std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  handler_ = std::move(handler);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void TcpServerTransport::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by Stop
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void TcpServerTransport::ReaderLoop(std::shared_ptr<Conn> conn) {
  Bytes frame;
  while (ReadFrame(conn->fd, frame)) {
    // The respond closure shares ownership of the connection so replies
    // written after the reader exits (or after Stop) stay memory-safe; the
    // open flag under write_mu makes them silent no-ops instead.
    Respond respond = [conn](Bytes reply) {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      if (conn->open) WriteFrame(conn->fd, reply);
    };
    handler_(std::move(frame), std::move(respond));
    frame = Bytes();
  }
}

void TcpServerTransport::Stop() {
  if (!started_) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
    readers.swap(readers_);
  }
  for (auto& conn : conns) {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    conn->open = false;
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  for (auto& conn : conns) ::close(conn->fd);
  listen_fd_ = -1;
  started_ = false;
}

Result<std::unique_ptr<ClientTransport>> TcpClientTransport::Connect(
    const std::string& host, std::uint16_t port) {
  using R = Result<std::unique_ptr<ClientTransport>>;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return R::Error(std::string("tcp client: socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return R::Error("tcp client: bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return R::Error(std::string("tcp client: connect: ") +
                    std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return R(std::unique_ptr<ClientTransport>(new TcpClientTransport(fd)));
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Bytes> TcpClientTransport::Call(ByteView request) {
  if (!WriteFrame(fd_, request)) {
    return Result<Bytes>::Error("tcp client: write failed (server gone?)");
  }
  Bytes reply;
  if (!ReadFrame(fd_, reply)) {
    return Result<Bytes>::Error("tcp client: read failed (server gone?)");
  }
  return reply;
}

}  // namespace dcert::svc
