#include "svc/fault_transport.h"

#include <thread>

namespace dcert::svc {

namespace {

/// Decorrelates per-stream fault sequences without making them independent
/// of the master seed (splitmix-style mix).
std::uint64_t StreamSeed(std::uint64_t seed, std::uint64_t stream_id) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Bump(const std::shared_ptr<FaultCounters>& counters,
          std::atomic<std::uint64_t> FaultCounters::*field) {
  if (counters) (counters.get()->*field).fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<ClientTransport> inner, const FaultConfig& config,
    std::uint64_t stream_id, std::shared_ptr<FaultCounters> counters)
    : inner_(std::move(inner)),
      config_(config),
      rng_(StreamSeed(config.seed, stream_id)),
      counters_(std::move(counters)) {}

Result<Bytes> FaultInjectingTransport::Call(ByteView request,
                                            std::chrono::milliseconds deadline) {
  std::lock_guard<std::mutex> lk(mu_);
  if (rng_.Chance(config_.drop_rate)) {
    // A dropped frame is indistinguishable from a stalled server: the client
    // would wait out its deadline. Surface the timeout immediately rather
    // than burning real wall clock on it.
    Bump(counters_, &FaultCounters::drops);
    return Result<Bytes>(TimeoutError("fault: request dropped"));
  }
  if (rng_.Chance(config_.delay_rate)) {
    Bump(counters_, &FaultCounters::delays);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng_.NextRange(1, config_.delay_ms_max)));
  }
  const int sends = rng_.Chance(config_.duplicate_rate) ? 2 : 1;
  if (sends == 2) Bump(counters_, &FaultCounters::duplicates);
  Result<Bytes> reply = Result<Bytes>::Error("fault: no attempt");
  for (int i = 0; i < sends; ++i) {
    reply = inner_->Call(request, deadline);
    if (!reply.ok()) return reply;
  }
  Bytes body = std::move(reply.value());
  if (!body.empty() && rng_.Chance(config_.truncate_rate)) {
    // A mid-frame disconnect delivers a prefix; the decoder must reject it.
    Bump(counters_, &FaultCounters::truncations);
    body.resize(rng_.NextBelow(body.size()));
  }
  if (!body.empty() && rng_.Chance(config_.corrupt_rate)) {
    // One flipped bit anywhere: either decoding fails or the proof no longer
    // verifies against the certified digest — never silently accepted.
    Bump(counters_, &FaultCounters::corruptions);
    body[rng_.NextBelow(body.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.NextBelow(8));
  }
  if (rng_.Chance(config_.reorder_rate)) {
    // Frame reorder at the call boundary: hold this reply back and deliver
    // the previously held one instead, so two consecutive calls observe each
    // other's replies. With nothing held yet, the swap degenerates into
    // answering this call with its own reply (nothing earlier to reorder
    // with), but the hold still shifts the stream for the next call.
    Bump(counters_, &FaultCounters::reorders);
    std::optional<Bytes> released = std::move(held_reply_);
    held_reply_ = std::move(body);
    if (released) return std::move(*released);
    return Bytes(*held_reply_);  // copy: it's the only reply we have
  }
  if (held_reply_) {
    // A previous call's reply was held: deliver it now and hold the current
    // one, completing the swap.
    Bytes released = std::move(*held_reply_);
    held_reply_ = std::move(body);
    return released;
  }
  return body;
}

Connector FaultyConnector(Connector dial, FaultConfig config,
                          std::shared_ptr<FaultCounters> counters) {
  // The rng and stream counter live behind a shared_ptr so the returned
  // std::function stays copyable; dials may come from any thread.
  struct State {
    std::mutex mu;
    Rng rng;
    std::uint64_t next_stream = 0;
    explicit State(std::uint64_t seed) : rng(StreamSeed(seed, ~0ULL)) {}
  };
  auto state = std::make_shared<State>(config.seed);
  return [dial = std::move(dial), config, counters, state]()
             -> Result<std::unique_ptr<ClientTransport>> {
    std::uint64_t stream_id;
    {
      std::lock_guard<std::mutex> lk(state->mu);
      stream_id = state->next_stream++;
      if (state->rng.Chance(config.refuse_connect_rate)) {
        Bump(counters, &FaultCounters::refused_connects);
        return Result<std::unique_ptr<ClientTransport>>(
            ConnectionError("fault: connect refused"));
      }
    }
    auto inner = dial();
    if (!inner.ok()) return inner;
    return Result<std::unique_ptr<ClientTransport>>(
        std::make_unique<FaultInjectingTransport>(std::move(inner.value()),
                                                  config, stream_id, counters));
  };
}

}  // namespace dcert::svc
