// Deterministic fault-injecting decorator around a ClientTransport: the
// standard harness for exercising the retry/deadline/verification machinery
// against the failure modes an untrusted SP or a hostile network produces —
// lost requests, latency spikes, truncated or bit-flipped replies, duplicated
// deliveries, and refused dials. Every fault draws from a seeded Rng, so a
// soak run is a pure function of (seed, workload) and failures reproduce.
//
// Faults are injected at the call boundary, which is where a client observes
// them anyway: a dropped frame *is* a timeout, a mid-frame disconnect *is* a
// short read. Truncation and corruption deliver the damaged bytes so the
// decode + proof-verification layers above get exercised, not bypassed.
//
// Deterministic composition order per Call, each drawing from the stream's
// seeded Rng in this exact sequence (so a run is a pure function of seed,
// stream id, and call order):
//   1. drop      — swallow the request, surface a timeout
//   2. delay     — sleep 1..delay_ms_max before the round trip
//   3. duplicate — send twice, keep the second reply
//   4. truncate  — deliver a strict prefix of the reply
//   5. corrupt   — flip one bit of the (possibly truncated) reply
//   6. reorder   — hold this reply back and deliver the previously held one
//                  instead (the next call on this stream gets this one), the
//                  call-boundary analogue of frame reordering on the wire
// Later faults compose on the output of earlier ones: a truncated reply can
// also be corrupted, and a reordered reply carries whatever damage it
// received when it was first produced.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "common/rng.h"
#include "svc/transport.h"

namespace dcert::svc {

struct FaultConfig {
  double drop_rate = 0.0;       // swallow the request; surfaces as a timeout
  double delay_rate = 0.0;      // add latency before the round trip
  double truncate_rate = 0.0;   // deliver only a prefix of the reply
  double duplicate_rate = 0.0;  // send the request twice, keep the 2nd reply
  double corrupt_rate = 0.0;    // flip one bit of the reply
  double reorder_rate = 0.0;    // swap this reply with the next one
  double refuse_connect_rate = 0.0;  // FaultyConnector refuses the dial
  std::uint64_t delay_ms_max = 10;
  std::uint64_t seed = 1;
};

/// Shared across every transport a FaultyConnector hands out, so a test can
/// assert the soak actually injected faults.
struct FaultCounters {
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> truncations{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> refused_connects{0};

  std::uint64_t Total() const {
    return drops.load() + delays.load() + truncations.load() +
           duplicates.load() + corruptions.load() + reorders.load() +
           refused_connects.load();
  }
};

class FaultInjectingTransport final : public ClientTransport {
 public:
  /// `stream_id` decorrelates the fault sequence of concurrent connections
  /// sharing one config; counters may be null.
  FaultInjectingTransport(std::unique_ptr<ClientTransport> inner,
                          const FaultConfig& config, std::uint64_t stream_id = 0,
                          std::shared_ptr<FaultCounters> counters = nullptr);

  using ClientTransport::Call;
  Result<Bytes> Call(ByteView request,
                     std::chrono::milliseconds deadline) override;

 private:
  std::unique_ptr<ClientTransport> inner_;
  FaultConfig config_;
  std::mutex mu_;  // connections are per-thread by contract; stay safe anyway
  Rng rng_;
  std::shared_ptr<FaultCounters> counters_;
  /// A reply held back by the reorder fault, delivered on the next call.
  std::optional<Bytes> held_reply_;
};

/// Wraps `dial` so every connection it produces is fault-injected (with a
/// fresh stream id per dial) and dials themselves fail with
/// `refuse_connect_rate`, mimicking a flapping or overloaded listener.
Connector FaultyConnector(Connector dial, FaultConfig config,
                          std::shared_ptr<FaultCounters> counters = nullptr);

}  // namespace dcert::svc
