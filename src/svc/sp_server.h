// Multi-threaded Query Service Provider (the paper's SP, Sec. 5) behind a
// Transport: framed requests — historical/aggregate queries, certified-block
// announcements, tip fetches — are admission-controlled on the transport
// thread and dispatched onto a common::ThreadPool. The server maintains its
// own live HistoricalIndex from announced blocks (validating the CI's block
// and index certificates exactly as a superlight client would, so a tampered
// announcement never enters the index), serves authenticated proofs under a
// reader/writer lock, and caches encoded replies in a sharded LRU keyed by
// (query, tip height) that is flushed whenever a new certified block lands.
//
// Admission control: at most `max_queue` requests may be admitted
// (queued + executing) at once; beyond that the transport thread replies
// kBusy immediately without touching the pool (load shedding). Shutdown()
// first stops admitting (new requests shed), then waits for the admitted
// ones to finish (graceful drain), then stops the transport.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "chain/block_store.h"
#include "ckpt/checkpoint.h"
#include "common/thread_pool.h"
#include "dcert/cert_store.h"
#include "dcert/enclave_program.h"
#include "obs/metrics.h"
#include "query/historical_index.h"
#include "svc/protocol.h"
#include "svc/response_cache.h"
#include "svc/transport.h"

namespace dcert::svc {

struct SpServerConfig {
  /// Worker threads the server's common::ThreadPool runs requests on.
  std::size_t workers = 4;
  /// Admitted-request bound (queued + executing); above it requests shed.
  std::size_t max_queue = 64;
  bool enable_cache = true;
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 256;
  /// Enclave identity announcements must be certified by.
  Hash256 expected_measurement = core::ExpectedEnclaveMeasurement();
  /// Fleet shard assignment (map_version != 0 makes the server sharded):
  /// queries for keys or height windows outside it are rejected with
  /// kStaleShard (retryable — the client refreshes its map and re-routes),
  /// and reply-cache invalidation turns shard-local (announcements writing
  /// nothing this shard owns skip the flush).
  ShardAssignment shard;
  /// Serialized fleet::ShardMap served verbatim on Op::kShardMap; empty
  /// means this server cannot answer shard-map fetches.
  Bytes shard_map;
  /// Test hook: artificial per-request processing delay, to make admission
  /// control and drain observable in fast unit tests.
  std::uint64_t debug_process_delay_ms = 0;
};

struct SpServerStats {
  std::uint64_t served = 0;             // OK replies
  std::uint64_t shed = 0;               // kBusy replies from admission control
  std::uint64_t errors = 0;             // kError replies
  std::uint64_t blocks_applied = 0;     // announcements accepted into the index
  std::uint64_t announce_rejected = 0;  // announcements failing validation
  std::uint64_t shard_rejects = 0;      // kStaleShard replies (wrong shard/map)
  std::uint64_t tip_height = 0;
  CacheStats cache;
};

class SpServer {
 public:
  explicit SpServer(SpServerConfig config);
  ~SpServer();
  SpServer(const SpServer&) = delete;
  SpServer& operator=(const SpServer&) = delete;

  /// Registers this server's handler with `transport` and starts serving.
  /// The transport must outlive the server (or Shutdown must run first).
  Status Serve(ServerTransport& transport);

  /// Graceful shutdown: shed new requests, drain in-flight ones, stop the
  /// transport. Idempotent; also runs from the destructor.
  void Shutdown();

  /// In-process announcement path (setup rigs, benches). Same validation as
  /// announcements arriving over the wire.
  Status Announce(const AnnounceRequest& req);

  /// Bootstraps a FRESH server from a CI's durable stores after a restart:
  /// validates every stored block certificate (digest + envelope, pinned
  /// measurement) and the chain linkage, and rebuilds the live
  /// HistoricalIndex by applying the stored blocks in order. The restored
  /// tip carries the stored block certificate; the index-certificate slot
  /// holds it too as a fail-safe placeholder (clients reject it as an index
  /// cert) until the next live announcement refreshes it — the durable
  /// stores hold block certs only, so certified index serving resumes then.
  /// Fails without touching state when the server has already applied
  /// blocks.
  Status Rehydrate(const chain::BlockStore& blocks,
                   const core::CertificateStore& certs);

  /// O(delta) bootstrap of a FRESH server: verifies the checkpoint
  /// (certificate envelope, digest binding, index-cert binding), restores
  /// the index from its content (the restored digest must reproduce the
  /// certified one), cross-checks the checkpoint tip against the stored
  /// block at its height, then replays only the stored tail above it — so
  /// rehydration cost depends on the checkpoint delta, not chain length.
  /// When the tail is empty and the checkpoint carries an index
  /// certificate (SP-written checkpoints do), the restored tip serves it
  /// directly: queries verify immediately, no placeholder. A non-empty
  /// tail advances the index past the checkpoint's certified digest, so
  /// the fail-safe placeholder applies until the next live announcement.
  Status RehydrateFromCheckpoint(const ckpt::Checkpoint& ck,
                                 const chain::BlockStore& blocks,
                                 const core::CertificateStore& certs);

  /// Store-free variant for servers fed by live announcements (fleet shard
  /// warm start): restores tip + index from the checkpoint alone — O(1) in
  /// chain length — and resumes accepting announcements at the next height.
  /// The tail is empty by construction, so a carried index certificate
  /// serves immediately.
  Status RehydrateFromCheckpoint(const ckpt::Checkpoint& ck);

  /// Snapshot of this server's serving state as an SP-flavor checkpoint:
  /// tip header + block certificate, index content + certified digest, and
  /// the tip's index certificate when it is a real one (fresh from an
  /// announcement, not a rehydrate placeholder). No body/state — a query
  /// server holds neither. Fails before the first certified tip.
  Result<ckpt::Checkpoint> ExportCheckpoint() const;

  SpServerStats Stats() const;

 private:
  /// Transport-thread entry: admission control + pool dispatch.
  void HandleFrame(Bytes request, Respond respond);
  /// Pool-thread entry: decode, serve, encode.
  Bytes Process(const Bytes& request);
  Bytes ProcessQuery(const QueryRequest& req);
  Bytes ProcessTipFetch();
  Bytes ProcessHealth();
  std::uint64_t UptimeMs() const;
  /// Ownership + map-version checks, then the inner tip/query request.
  Bytes ProcessShardScoped(const ShardScopedRequest& req);
  /// kStaleShard reply helper (counts shard_rejects).
  Bytes RejectShard(const std::string& message);
  /// Applies announcements contiguously (out-of-order ones wait in
  /// pending_); caller must hold state_mu_ exclusively.
  Status AnnounceLocked(const AnnounceRequest& req);
  /// Chunk-batched certificate validation + index apply of stored blocks
  /// [from, blocks.Count()); caller must hold state_mu_ exclusively and
  /// have next_height_ == from with `prev_hdr` the header at from - 1.
  Status RehydrateRange(const chain::BlockStore& blocks,
                        const core::CertificateStore& certs,
                        std::uint64_t from, chain::BlockHeader prev_hdr);
  /// Checkpoint verify + index restore + tip install; caller must hold
  /// state_mu_ exclusively on a fresh server.
  Status RestoreFromCheckpointLocked(const ckpt::Checkpoint& ck);

  SpServerConfig config_;
  /// Process start for the kHealth uptime field (per-server is the closest
  /// observable proxy; servers are constructed at process start in practice).
  std::chrono::steady_clock::time_point start_time_;
  common::ThreadPool pool_;
  ResponseCache cache_;
  ServerTransport* transport_ = nullptr;

  // Admission control.
  mutable std::mutex admit_mu_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;
  bool draining_ = false;

  // Serving state: the live index plus the certified tip it reflects.
  mutable std::shared_mutex state_mu_;
  query::HistoricalIndex index_;
  std::map<std::uint64_t, AnnounceRequest> pending_;  // by height
  std::optional<TipInfo> tip_;
  std::uint64_t next_height_ = 1;

  // Instance-owned registry-backed metrics (monotonic, read via Stats());
  // registered under `svc.server.*` / `svc.latency.*`, latest instance wins
  // the names on the live stats endpoint.
  std::shared_ptr<obs::Counter> served_;
  std::shared_ptr<obs::Counter> shed_;
  std::shared_ptr<obs::Counter> errors_;
  std::shared_ptr<obs::Counter> blocks_applied_;
  std::shared_ptr<obs::Counter> announce_rejected_;
  std::shared_ptr<obs::Counter> shard_rejects_;
  std::shared_ptr<obs::Gauge> inflight_gauge_;  // mirrors in_flight_
  std::shared_ptr<obs::Gauge> uptime_gauge_;    // refreshed on kStats/kHealth
  std::shared_ptr<obs::Histogram> lat_tip_ns_;
  std::shared_ptr<obs::Histogram> lat_historical_ns_;
  std::shared_ptr<obs::Histogram> lat_aggregate_ns_;
  std::shared_ptr<obs::Histogram> lat_announce_ns_;
  std::shared_ptr<obs::Histogram> lat_stats_ns_;
};

}  // namespace dcert::svc
