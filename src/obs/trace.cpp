#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>

namespace dcert::obs {

struct TraceLog::Ring {
  std::mutex mu;
  std::array<TraceEvent, kRingCapacity> events;
  std::size_t next = 0;   // write cursor
  std::size_t count = 0;  // valid entries (saturates at capacity)
  std::atomic<bool> leased{false};
};

namespace {

/// Returns the leased ring to the free pool at thread exit. Data written so
/// far stays readable; a later thread reusing the ring appends after it.
struct RingLease {
  std::shared_ptr<TraceLog::Ring> ring;
  ~RingLease() {
    if (ring) ring->leased.store(false, std::memory_order_release);
  }
};

}  // namespace

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();  // leaked on purpose
  return *log;
}

std::uint64_t TraceLog::NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count());
}

std::shared_ptr<TraceLog::Ring> TraceLog::LeaseRing() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& ring : rings_) {
    bool expected = false;
    if (ring->leased.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire)) {
      return ring;
    }
  }
  if (rings_.size() >= kMaxRings) return nullptr;
  auto ring = std::make_shared<Ring>();
  ring->leased.store(true, std::memory_order_relaxed);
  rings_.push_back(ring);
  return ring;
}

void TraceLog::Record(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns) {
  thread_local RingLease lease{Global().LeaseRing()};
  if (!lease.ring) return;  // over kMaxRings: drop the event, keep going
  Ring& ring = *lease.ring;
  std::lock_guard<std::mutex> lk(ring.mu);
  ring.events[ring.next] = TraceEvent{name, start_ns, dur_ns};
  ring.next = (ring.next + 1) % kRingCapacity;
  if (ring.count < kRingCapacity) ++ring.count;
}

std::vector<TraceEvent> TraceLog::Recent(std::size_t max_events) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    for (std::size_t i = 0; i < ring->count; ++i) out.push_back(ring->events[i]);
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns < b.start_ns;
  });
  if (out.size() > max_events) {
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return out;
}

std::uint64_t TraceSpan::Finish() {
  if (finished_) return dur_ns_;
  finished_ = true;
  dur_ns_ = TraceLog::NowNs() - start_ns_;
  if (!Enabled()) return dur_ns_;
  if (hist_ != nullptr) hist_->Record(dur_ns_);
  TraceLog::Global().Record(name_, start_ns_, dur_ns_);
  return dur_ns_;
}

}  // namespace dcert::obs
