#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace dcert::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string PromName(const std::string& name) {
  std::string out = "dcert_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

bool IsNanosMetric(const std::string& name) {
  return name.size() > 3 && name.rfind("_ns") == name.size() - 3;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"mean\":" + Num(h.Mean());
    out += ",\"p50\":" + Num(h.Quantile(0.50));
    out += ",\"p95\":" + Num(h.Quantile(0.95));
    out += ",\"p99\":" + Num(h.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cum = 0;
    for (const auto& [bound, n] : h.buckets) {
      cum += n;
      out += p + "_bucket{le=\"" + std::to_string(bound) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string RenderTable(const MetricsSnapshot& snap) {
  std::string out;
  char line[256];
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      std::snprintf(line, sizeof(line), "  %-40s %20" PRIu64 "\n", name.c_str(),
                    v);
      out += line;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      std::snprintf(line, sizeof(line), "  %-40s %20" PRId64 "\n", name.c_str(),
                    v);
      out += line;
    }
  }
  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    std::snprintf(line, sizeof(line), "  %-40s %10s %10s %10s %10s %10s %10s\n",
                  "", "count", "mean", "p50", "p95", "p99", "max");
    out += line;
    for (const auto& [name, h] : snap.histograms) {
      if (IsNanosMetric(name)) {
        // Latency histograms render in milliseconds.
        std::snprintf(line, sizeof(line),
                      "  %-40s %10" PRIu64 " %8.3fms %8.3fms %8.3fms %8.3fms "
                      "%8.3fms\n",
                      name.c_str(), h.count, h.Mean() / 1e6,
                      h.Quantile(0.50) / 1e6, h.Quantile(0.95) / 1e6,
                      h.Quantile(0.99) / 1e6, static_cast<double>(h.max) / 1e6);
      } else {
        std::snprintf(line, sizeof(line),
                      "  %-40s %10" PRIu64 " %10.0f %10.0f %10.0f %10.0f "
                      "%10" PRIu64 "\n",
                      name.c_str(), h.count, h.Mean(), h.Quantile(0.50),
                      h.Quantile(0.95), h.Quantile(0.99), h.max);
      }
      out += line;
    }
  }
  return out;
}

}  // namespace dcert::obs
