#include "obs/metrics.h"

#include <algorithm>
#include <thread>

namespace dcert::obs {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_thread{0};

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::size_t SlotCount() {
  static const std::size_t n = [] {
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    std::size_t p = 1;
    while (p < hw && p < 32) p <<= 1;
    return p;
  }();
  return n;
}

std::size_t ThisThreadSlot() {
  thread_local const std::size_t slot =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) & (SlotCount() - 1);
  return slot;
}

Histogram::Histogram() {
  slots_.reserve(SlotCount());
  for (std::size_t i = 0; i < SlotCount(); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  std::vector<std::uint64_t> merged(kBucketCount, 0);
  for (const auto& slot : slots_) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      merged[i] += slot->counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += slot->sum.load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (merged[i] == 0) continue;
    snap.count += merged[i];
    snap.buckets.emplace_back(BucketUpperBound(i), merged[i]);
  }
  if (snap.count != 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (0-based), then interpolate linearly inside
  // the containing bucket. The lower edge comes from the bucket geometry
  // (the previous *entry* in the sparse list may be a far-away bucket), and
  // samples sit mid-step so a lone sample reports mid-bucket, not the edge.
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cum = 0;
  for (const auto& [bound, n] : buckets) {
    if (rank < static_cast<double>(cum + n)) {
      const std::size_t idx = Histogram::BucketIndex(bound);
      const double lo =
          idx == 0 ? 0.0
                   : static_cast<double>(Histogram::BucketUpperBound(idx - 1));
      const double frac = std::clamp(
          (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(n), 0.0,
          1.0);
      const double v = lo + (static_cast<double>(bound) - lo) * frac;
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cum += n;
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::DeltaFrom(const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  out.min = min;
  out.max = max;
  out.sum = sum - std::min(sum, base.sum);
  std::map<std::uint64_t, std::uint64_t> base_counts(base.buckets.begin(),
                                                     base.buckets.end());
  for (const auto& [bound, n] : buckets) {
    auto it = base_counts.find(bound);
    const std::uint64_t prior = it == base_counts.end() ? 0 : it->second;
    if (n > prior) {
      out.buckets.emplace_back(bound, n - prior);
      out.count += n - prior;
    }
  }
  return out;
}

HistogramSnapshot HistogramSnapshot::MergedWith(
    const HistogramSnapshot& other) const {
  if (count == 0) return other;
  if (other.count == 0) return *this;
  HistogramSnapshot out;
  out.count = count + other.count;
  out.sum = sum + other.sum;
  out.min = std::min(min, other.min);
  out.max = std::max(max, other.max);
  std::map<std::uint64_t, std::uint64_t> merged(buckets.begin(),
                                                buckets.end());
  for (const auto& [bound, n] : other.buckets) merged[bound] += n;
  out.buckets.assign(merged.begin(), merged.end());
  return out;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto it = gauges.find(name);
    gauges[name] = it == gauges.end() ? v : std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    histograms[name] = it == histograms.end() ? h : it->second.MergedWith(h);
  }
}

MetricsSnapshot MetricsSnapshot::DeltaFrom(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    const std::uint64_t prior = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = v - std::min(v, prior);
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    auto it = base.histograms.find(name);
    out.histograms[name] =
        it == base.histograms.end() ? h : h.DeltaFrom(it->second);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked on purpose
  return *registry;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_shared<Counter>();
  return slot;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_shared<Gauge>();
  return slot;
}

std::shared_ptr<Histogram> MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_shared<Histogram>();
  return slot;
}

void MetricsRegistry::Register(const std::string& name, std::shared_ptr<Counter> c) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] = std::move(c);
}

void MetricsRegistry::Register(const std::string& name, std::shared_ptr<Gauge> g) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[name] = std::move(g);
}

void MetricsRegistry::Register(const std::string& name, std::shared_ptr<Histogram> h) {
  std::lock_guard<std::mutex> lk(mu_);
  histograms_[name] = std::move(h);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
  return snap;
}

}  // namespace dcert::obs
