// RAII scoped timers feeding named histograms, plus a per-thread ring buffer
// of recent span events for "what was this process just doing" forensics
// (dumped by tests and debug tooling; the wire stats endpoint serves the
// histograms, not the raw events).
//
// Span names must be string literals (or otherwise outlive the process): the
// ring stores the pointer, not a copy, to keep the hot path allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace dcert::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // monotonic, since process start
  std::uint64_t dur_ns = 0;
};

/// Process-wide collection of per-thread span rings. Each recording thread
/// leases a fixed-capacity ring (returned to a free list at thread exit, so
/// connection-churn workloads do not grow the set without bound); writes take
/// only that ring's uncontended mutex.
class TraceLog {
 public:
  static constexpr std::size_t kRingCapacity = 512;
  /// Rings are reused after thread exit; past this many simultaneously live
  /// recording threads, extra threads skip ring recording (histograms still
  /// record).
  static constexpr std::size_t kMaxRings = 256;

  /// One thread's span storage; opaque outside trace.cpp (public only so the
  /// thread-exit lease in trace.cpp can name it).
  struct Ring;

  static TraceLog& Global();

  /// Monotonic nanoseconds since process start (first call).
  static std::uint64_t NowNs();

  /// Appends one event to the calling thread's ring.
  void Record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Most recent events across all rings, ascending by start time, at most
  /// `max_events` (the newest are kept).
  std::vector<TraceEvent> Recent(std::size_t max_events = kRingCapacity) const;

 private:
  std::shared_ptr<Ring> LeaseRing();

  mutable std::mutex mu_;  // guards rings_ membership, not ring contents
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// Scoped timer: records elapsed ns into `hist` (when given) and into the
/// calling thread's trace ring on destruction or Finish().
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr)
      : name_(name), hist_(hist), start_ns_(TraceLog::NowNs()) {}
  TraceSpan(const char* name, const std::shared_ptr<Histogram>& hist)
      : TraceSpan(name, hist.get()) {}
  ~TraceSpan() { Finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early; idempotent. Returns the duration in ns.
  std::uint64_t Finish();

 private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t start_ns_;
  bool finished_ = false;
  std::uint64_t dur_ns_ = 0;
};

}  // namespace dcert::obs
