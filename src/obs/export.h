// Renderers for a MetricsSnapshot: JSON (bench artifacts, `dcertctl stats
// --json`), Prometheus text exposition (`--prom`, scrape-ready), and a
// human-readable table (the default `dcertctl stats` output).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace dcert::obs {

/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
/// mean,p50,p95,p99}}} — summary form; bucket detail stays wire/table-side.
std::string ToJson(const MetricsSnapshot& snap);

/// Prometheus text exposition format v0.0.4: counters/gauges as-is,
/// histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
/// Metric names are sanitized (non-alphanumerics become '_').
std::string ToPrometheusText(const MetricsSnapshot& snap);

/// Aligned human-readable table; histogram rows show count/mean/p50/p95/p99/
/// max, rendered in ms for metrics named `*_ns`.
std::string RenderTable(const MetricsSnapshot& snap);

}  // namespace dcert::obs
