// Process-wide low-overhead metrics: sharded counters, gauges, and log-linear
// histograms behind a named registry, feeding the live `dcertctl stats`
// endpoint, the Prometheus/JSON exporters, and the bench JSON cost breakdowns.
//
// Hot-path design:
//  * Writes are lock-free: each thread hashes to one of a fixed power-of-two
//    set of cache-line-padded slots and does a relaxed fetch_add there, so
//    concurrent recorders never contend on one line (no false sharing).
//  * Reads merge: Value()/Snapshot() sum the slots. Totals are exact for
//    quiesced recorders and monotonically catch up under concurrent writes
//    (relaxed loads may miss in-flight increments, never invent them).
//  * A process-wide kill switch (SetEnabled) turns every Record/Add into a
//    single relaxed load + branch, which is what the overhead canary measures
//    instrumented serving against.
//
// Ownership: metric objects are shared_ptr-owned. Components own their
// instance metrics (so per-instance accessors like CacheStats stay exact) and
// register them into a MetricsRegistry — by default the Global() one — where
// re-registering a name replaces the previous owner ("latest instance wins",
// which is the right semantics for a serving process with one live server).
//
// This library is deliberately std-only so the lowest layers (common, sgxsim)
// can link it without cycles.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dcert::obs {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Number of write slots every sharded metric carries (power of two, sized to
/// the hardware at first use, capped so idle histograms stay small).
std::size_t SlotCount();

/// This thread's slot index in [0, SlotCount()). Threads are striped over the
/// slots round-robin at first use.
std::size_t ThisThreadSlot();

/// Global recording switch. When false, Add/Record are branch-only no-ops
/// (reads still work). Used by the overhead canary and the bench A/B mode.
void SetEnabled(bool enabled);
bool Enabled();

struct alignas(kCacheLineBytes) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

/// Monotonic counter with per-thread-slot sharding.
class Counter {
 public:
  Counter() : slots_(SlotCount()) {}

  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    slots_[ThisThreadSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::vector<PaddedU64> slots_;
};

/// Signed gauge (queue depths, resident bytes). Set/Add/Sub are single
/// relaxed atomics: gauges are low-frequency compared to counters, and Set
/// semantics do not shard.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!Enabled()) return;
    value_.v.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t n = 1) {
    if (!Enabled()) return;
    value_.v.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(std::int64_t n = 1) { Add(-n); }
  std::int64_t Value() const { return value_.v.load(std::memory_order_relaxed); }

 private:
  struct alignas(kCacheLineBytes) PaddedI64 {
    std::atomic<std::int64_t> v{0};
  };
  PaddedI64 value_;
};

/// Read-side copy of one histogram: exact count/sum, sparse per-bucket
/// counts, and quantile estimation by interpolation inside the bucket.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  /// (inclusive upper bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Value at quantile q in [0,1], interpolated within the containing bucket.
  double Quantile(double q) const;
  /// Bucket-wise (this - base); min/max stay this snapshot's (they are
  /// since-construction extremes, not differentiable).
  HistogramSnapshot DeltaFrom(const HistogramSnapshot& base) const;
  /// Bucket-wise (this + other): count/sum add, min/max widen. Quantiles of
  /// the merge are exact to bucket resolution, same as a single histogram.
  HistogramSnapshot MergedWith(const HistogramSnapshot& other) const;
};

/// Log-linear histogram of non-negative 64-bit samples (latencies in ns,
/// sizes in bytes): exact buckets for values < 8, then 8 linear subdivisions
/// per power of two (~12.5% relative resolution) up to 2^64-1. Recording is
/// a slot-sharded relaxed fetch_add; min/max use a rarely-taken CAS loop.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount = kSub + (64 - kSubBits) * kSub;

  Histogram();

  void Record(std::uint64_t v) {
    if (!Enabled()) return;
    Slot& s = *slots_[ThisThreadSlot()];
    s.counts[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int exp = 63 - std::countl_zero(v);
    const std::uint64_t sub = (v >> (exp - kSubBits)) - kSub;
    return kSub + static_cast<std::size_t>(exp - kSubBits) * kSub +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket `idx` (inclusive).
  static std::uint64_t BucketUpperBound(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t rel = idx - kSub;
    const int exp = kSubBits + static_cast<int>(rel / kSub);
    const std::uint64_t sub = rel % kSub;
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBits);
    // Wraps to 2^64-1 for the very top bucket, which is the intended bound.
    return (std::uint64_t{1} << exp) + sub * width + width - 1;
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct Slot {
    std::vector<std::atomic<std::uint64_t>> counts;
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> sum{0};
    Slot() : counts(kBucketCount) {}
  };

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every registered metric; values never change after
/// the call (snapshot-vs-live isolation).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Per-name (this - base) for counters and histograms; gauges keep this
  /// snapshot's value (deltas of levels are not meaningful). Names missing
  /// from `base` are treated as starting at zero.
  MetricsSnapshot DeltaFrom(const MetricsSnapshot& base) const;

  /// Folds `other` into this snapshot, fleet-style: counters sum (total work
  /// across servers), gauges take the max (a level like queue depth is most
  /// useful at its worst), histograms merge bucket-wise (so fleet-wide
  /// percentiles come from the combined distribution, never from averaging
  /// per-server quantiles).
  void MergeFrom(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  /// The process-wide registry every layer records into by default.
  static MetricsRegistry& Global();

  /// Get-or-create: returns the metric registered under `name`, creating it
  /// on first use. The registry and the caller share ownership.
  std::shared_ptr<Counter> GetCounter(const std::string& name);
  std::shared_ptr<Gauge> GetGauge(const std::string& name);
  std::shared_ptr<Histogram> GetHistogram(const std::string& name);

  /// Registers a caller-owned metric, replacing any previous holder of the
  /// name (latest instance wins — see the header comment on ownership).
  void Register(const std::string& name, std::shared_ptr<Counter> c);
  void Register(const std::string& name, std::shared_ptr<Gauge> g);
  void Register(const std::string& name, std::shared_ptr<Histogram> h);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // registration + snapshot walk only, never records
  std::map<std::string, std::shared_ptr<Counter>> counters_;
  std::map<std::string, std::shared_ptr<Gauge>> gauges_;
  std::map<std::string, std::shared_ptr<Histogram>> histograms_;
};

}  // namespace dcert::obs
