// Merkle B-tree: range queries with completeness, stateless appends.
#include "mht/mbtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace dcert::mht {
namespace {

Bytes Val(std::uint64_t k) { return StrBytes("value-" + std::to_string(k)); }

MbTree BuildSequential(std::uint64_t n) {
  MbTree tree;
  for (std::uint64_t k = 1; k <= n; ++k) tree.Insert(k, Val(k));
  return tree;
}

TEST(MbTreeTest, EmptyTree) {
  MbTree tree;
  EXPECT_EQ(tree.Root(), MbTree::EmptyRoot());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_FALSE(tree.MaxKey().has_value());

  MbRangeProof proof = tree.RangeQueryWithProof(1, 10);
  auto results = MbTree::VerifyRange(tree.Root(), 1, 10, proof);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
}

TEST(MbTreeTest, InsertAndQuerySmall) {
  MbTree tree = BuildSequential(5);
  EXPECT_EQ(tree.Size(), 5u);
  EXPECT_EQ(tree.MaxKey(), 5u);
  MbRangeProof proof = tree.RangeQueryWithProof(2, 4);
  auto results = MbTree::VerifyRange(tree.Root(), 2, 4, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  ASSERT_EQ(results.value().size(), 3u);
  EXPECT_EQ(results.value()[0], (MbEntry{2, Val(2)}));
  EXPECT_EQ(results.value()[2], (MbEntry{4, Val(4)}));
}

TEST(MbTreeTest, DuplicateKeyThrows) {
  MbTree tree = BuildSequential(3);
  EXPECT_THROW(tree.Insert(2, Val(2)), std::invalid_argument);
}

TEST(MbTreeTest, NonSequentialInsertOrder) {
  // Root hash must be a function of contents, not insertion order.
  std::vector<std::uint64_t> keys{5, 1, 9, 3, 7, 2, 8, 4, 6, 10};
  MbTree a;
  for (std::uint64_t k : keys) a.Insert(k, Val(k));
  MbTree b = BuildSequential(10);
  // Different insertion orders can produce different tree *shapes* in a
  // B-tree, so compare query results rather than roots.
  for (auto* t : {&a, &b}) {
    auto res = MbTree::VerifyRange(t->Root(), 3, 8, t->RangeQueryWithProof(3, 8));
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.value().size(), 6u);
    for (std::uint64_t k = 3; k <= 8; ++k) {
      EXPECT_EQ(res.value()[k - 3].key, k);
    }
  }
}

TEST(MbTreeTest, EmptyRangeBetweenKeys) {
  MbTree tree;
  tree.Insert(10, Val(10));
  tree.Insert(20, Val(20));
  MbRangeProof proof = tree.RangeQueryWithProof(12, 18);
  auto results = MbTree::VerifyRange(tree.Root(), 12, 18, proof);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
}

TEST(MbTreeTest, ProofBoundToRange) {
  MbTree tree = BuildSequential(50);
  MbRangeProof proof = tree.RangeQueryWithProof(10, 20);
  EXPECT_FALSE(MbTree::VerifyRange(tree.Root(), 10, 25, proof).ok());
  EXPECT_FALSE(MbTree::VerifyRange(tree.Root(), 5, 20, proof).ok());
}

TEST(MbTreeTest, TamperedValueRejected) {
  MbTree tree = BuildSequential(30);
  MbRangeProof proof = tree.RangeQueryWithProof(5, 10);
  // Find an in-range leaf entry and corrupt its value.
  std::function<bool(MbProofNode*)> corrupt = [&](MbProofNode* node) {
    if (node->is_leaf) {
      for (auto& e : node->entries) {
        if (e.value) {
          (*e.value)[0] ^= 1;
          return true;
        }
      }
      return false;
    }
    for (auto& c : node->children) {
      if (c.node && corrupt(c.node.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(corrupt(proof.root.get()));
  EXPECT_FALSE(MbTree::VerifyRange(tree.Root(), 5, 10, proof).ok());
}

TEST(MbTreeTest, DroppedResultRejected) {
  // Completeness: removing an in-range entry from the proof breaks the root.
  MbTree tree = BuildSequential(30);
  MbRangeProof proof = tree.RangeQueryWithProof(5, 10);
  std::function<bool(MbProofNode*)> drop = [&](MbProofNode* node) {
    if (node->is_leaf) {
      for (std::size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].value) {
          node->entries.erase(node->entries.begin() + static_cast<std::ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    }
    for (auto& c : node->children) {
      if (c.node && drop(c.node.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(drop(proof.root.get()));
  EXPECT_FALSE(MbTree::VerifyRange(tree.Root(), 5, 10, proof).ok());
}

TEST(MbTreeTest, PrunedOverlappingSubtreeRejected) {
  // A malicious SP pruning a subtree that intersects the range is caught.
  MbTree tree = BuildSequential(100);
  MbRangeProof proof = tree.RangeQueryWithProof(40, 60);
  // Prune the first expanded child of the root.
  ASSERT_FALSE(proof.root->is_leaf);
  bool pruned = false;
  for (auto& c : proof.root->children) {
    if (c.node) {
      c.node.reset();
      pruned = true;
      break;
    }
  }
  ASSERT_TRUE(pruned);
  EXPECT_FALSE(MbTree::VerifyRange(tree.Root(), 40, 60, proof).ok());
}

TEST(MbTreeTest, WrongRootRejected) {
  MbTree tree = BuildSequential(20);
  MbRangeProof proof = tree.RangeQueryWithProof(1, 5);
  Hash256 wrong = tree.Root();
  wrong[0] ^= 1;
  EXPECT_FALSE(MbTree::VerifyRange(wrong, 1, 5, proof).ok());
}

TEST(MbTreeTest, ProofSerializationRoundTrip) {
  MbTree tree = BuildSequential(64);
  MbRangeProof proof = tree.RangeQueryWithProof(30, 40);
  Bytes wire = proof.Serialize();
  auto decoded = MbRangeProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  auto results = MbTree::VerifyRange(tree.Root(), 30, 40, decoded.value());
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 11u);

  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(MbRangeProof::Deserialize(truncated).ok());
}

TEST(MbTreeTest, ApplyAppendMatchesInsertFromEmpty) {
  MbTree tree;
  Hash256 root = MbTree::EmptyRoot();
  for (std::uint64_t k = 1; k <= 100; ++k) {
    MbAppendProof spine = tree.ProveAppend();
    Bytes value = Val(k);
    Hash256 vh = crypto::Sha256::Digest(value);
    auto predicted = MbTree::ApplyAppend(root, spine, k, vh, MbValueWord(value));
    ASSERT_TRUE(predicted.ok()) << "k=" << k << ": " << predicted.message();
    tree.Insert(k, value);
    EXPECT_EQ(predicted.value(), tree.Root()) << "k=" << k;
    root = predicted.value();
  }
}

TEST(MbTreeTest, ApplyAppendRejectsNonIncreasingKey) {
  MbTree tree = BuildSequential(10);
  MbAppendProof spine = tree.ProveAppend();
  Hash256 vh = crypto::Sha256::Digest(Val(5));
  std::uint64_t vw = MbValueWord(Val(5));
  EXPECT_FALSE(MbTree::ApplyAppend(tree.Root(), spine, 10, vh, vw).ok());
  EXPECT_FALSE(MbTree::ApplyAppend(tree.Root(), spine, 5, vh, vw).ok());
  EXPECT_TRUE(MbTree::ApplyAppend(tree.Root(), spine, 11, vh, vw).ok());
}

TEST(MbTreeTest, ApplyAppendRejectsWrongOldRoot) {
  MbTree tree = BuildSequential(10);
  MbAppendProof spine = tree.ProveAppend();
  Hash256 wrong = tree.Root();
  wrong[3] ^= 1;
  EXPECT_FALSE(MbTree::ApplyAppend(wrong, spine, 11,
                                   crypto::Sha256::Digest(Val(11)),
                                   MbValueWord(Val(11)))
                   .ok());
}

TEST(MbTreeTest, ApplyAppendRejectsTamperedSpine) {
  MbTree tree = BuildSequential(40);
  MbAppendProof spine = tree.ProveAppend();
  ASSERT_FALSE(spine.root->is_leaf);
  spine.root->children[0].hash[0] ^= 1;
  EXPECT_FALSE(MbTree::ApplyAppend(tree.Root(), spine, 41,
                                   crypto::Sha256::Digest(Val(41)),
                                   MbValueWord(Val(41)))
                   .ok());
}

TEST(MbTreeTest, AppendProofSerializationRoundTrip) {
  MbTree tree = BuildSequential(25);
  MbAppendProof spine = tree.ProveAppend();
  auto decoded = MbAppendProof::Deserialize(spine.Serialize());
  ASSERT_TRUE(decoded.ok());
  auto applied = MbTree::ApplyAppend(tree.Root(), decoded.value(), 26,
                                     crypto::Sha256::Digest(Val(26)),
                                     MbValueWord(Val(26)));
  ASSERT_TRUE(applied.ok());
  tree.Insert(26, Val(26));
  EXPECT_EQ(applied.value(), tree.Root());
}

// Property sweep over tree sizes: every window of a random tree verifies and
// returns exactly the expected keys.
class MbTreeRangeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MbTreeRangeSweep, WindowsReturnExactKeys) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  MbTree tree = BuildSequential(n);
  Rng rng(n);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t lo = rng.NextRange(0, n + 2);
    std::uint64_t hi = rng.NextRange(lo, n + 2);
    auto res = MbTree::VerifyRange(tree.Root(), lo, hi,
                                   tree.RangeQueryWithProof(lo, hi));
    ASSERT_TRUE(res.ok()) << "n=" << n << " [" << lo << "," << hi
                          << "]: " << res.message();
    std::vector<std::uint64_t> expected;
    for (std::uint64_t k = std::max<std::uint64_t>(lo, 1); k <= std::min(hi, n); ++k) {
      expected.push_back(k);
    }
    ASSERT_EQ(res.value().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(res.value()[i].key, expected[i]);
      EXPECT_EQ(res.value()[i].value, Val(expected[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MbTreeRangeSweep,
                         ::testing::Values(1, 2, 7, 8, 9, 17, 64, 65, 200, 500));

}  // namespace
}  // namespace dcert::mht
