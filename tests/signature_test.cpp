// Schnorr signature tests: correctness, determinism, and forgery rejection.
#include "crypto/signature.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace dcert::crypto {
namespace {

Hash256 Msg(std::string_view s) { return Sha256::Digest(StrBytes(s)); }

TEST(SignatureTest, SignVerifyRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-1"));
  Hash256 m = Msg("hello dcert");
  Signature sig = sk.Sign(m);
  EXPECT_TRUE(Verify(sk.Public(), m, sig));
}

TEST(SignatureTest, SigningIsDeterministic) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-2"));
  Hash256 m = Msg("msg");
  EXPECT_EQ(sk.Sign(m), sk.Sign(m));
}

TEST(SignatureTest, DifferentMessagesDifferentSignatures) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-3"));
  EXPECT_NE(sk.Sign(Msg("a")), sk.Sign(Msg("b")));
}

TEST(SignatureTest, WrongMessageRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-4"));
  Signature sig = sk.Sign(Msg("genuine"));
  EXPECT_FALSE(Verify(sk.Public(), Msg("forged"), sig));
}

TEST(SignatureTest, WrongKeyRejected) {
  SecretKey sk1 = SecretKey::FromSeed(StrBytes("seed-5"));
  SecretKey sk2 = SecretKey::FromSeed(StrBytes("seed-6"));
  Hash256 m = Msg("msg");
  EXPECT_FALSE(Verify(sk2.Public(), m, sk1.Sign(m)));
}

TEST(SignatureTest, TamperedSignatureRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-7"));
  Hash256 m = Msg("msg");
  Signature sig = sk.Sign(m);

  Signature bad_r = sig;
  bad_r.r = Curve().Fp().Add(bad_r.r, U256(1));
  EXPECT_FALSE(Verify(sk.Public(), m, bad_r));

  Signature bad_s = sig;
  bad_s.s = Curve().Fn().Add(bad_s.s, U256(1));
  EXPECT_FALSE(Verify(sk.Public(), m, bad_s));
}

TEST(SignatureTest, OutOfRangeComponentsRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-8"));
  Hash256 m = Msg("msg");
  Signature sig = sk.Sign(m);

  Signature huge_r = sig;
  huge_r.r = Curve().P();  // >= p
  EXPECT_FALSE(Verify(sk.Public(), m, huge_r));

  Signature huge_s = sig;
  huge_s.s = Curve().N();  // >= n
  EXPECT_FALSE(Verify(sk.Public(), m, huge_s));
}

TEST(SignatureTest, SerializeRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-9"));
  Hash256 m = Msg("serialize me");
  Signature sig = sk.Sign(m);
  Bytes encoded = sig.Serialize();
  ASSERT_EQ(encoded.size(), 64u);
  auto decoded = Signature::Deserialize(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
  EXPECT_TRUE(Verify(sk.Public(), m, *decoded));
}

TEST(SignatureTest, DeserializeRejectsOutOfRange) {
  Bytes all_ff(64, 0xff);
  EXPECT_FALSE(Signature::Deserialize(all_ff).has_value());
  Bytes short_buf(63, 0);
  EXPECT_FALSE(Signature::Deserialize(short_buf).has_value());
}

TEST(SignatureTest, PublicKeySerializeRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-10"));
  Bytes encoded = sk.Public().Serialize();
  ASSERT_EQ(encoded.size(), 64u);
  auto decoded = PublicKey::Deserialize(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sk.Public());
}

TEST(SignatureTest, SeedsProduceDistinctKeys) {
  SecretKey a = SecretKey::FromSeed(StrBytes("alpha"));
  SecretKey b = SecretKey::FromSeed(StrBytes("beta"));
  EXPECT_NE(a.Public(), b.Public());
  // Same seed reproduces the same key.
  SecretKey a2 = SecretKey::FromSeed(StrBytes("alpha"));
  EXPECT_EQ(a.Public(), a2.Public());
}

// Parameterized sweep: many (seed, message) combinations round-trip, and a
// signature never validates under a different message or key.
class SignatureSweep : public ::testing::TestWithParam<int> {};

TEST_P(SignatureSweep, RoundTripAndCrossRejection) {
  int i = GetParam();
  SecretKey sk = SecretKey::FromSeed(StrBytes("sweep-seed-" + std::to_string(i)));
  Hash256 m = Msg("sweep-msg-" + std::to_string(i));
  Signature sig = sk.Sign(m);
  EXPECT_TRUE(Verify(sk.Public(), m, sig));
  Hash256 other = Msg("sweep-msg-" + std::to_string(i + 1));
  EXPECT_FALSE(Verify(sk.Public(), other, sig));
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SignatureSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace dcert::crypto
