// Schnorr signature tests: correctness, determinism, and forgery rejection.
#include "crypto/signature.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace dcert::crypto {
namespace {

Hash256 Msg(std::string_view s) { return Sha256::Digest(StrBytes(s)); }

TEST(SignatureTest, SignVerifyRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-1"));
  Hash256 m = Msg("hello dcert");
  Signature sig = sk.Sign(m);
  EXPECT_TRUE(Verify(sk.Public(), m, sig));
}

TEST(SignatureTest, SigningIsDeterministic) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-2"));
  Hash256 m = Msg("msg");
  EXPECT_EQ(sk.Sign(m), sk.Sign(m));
}

TEST(SignatureTest, DifferentMessagesDifferentSignatures) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-3"));
  EXPECT_NE(sk.Sign(Msg("a")), sk.Sign(Msg("b")));
}

TEST(SignatureTest, WrongMessageRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-4"));
  Signature sig = sk.Sign(Msg("genuine"));
  EXPECT_FALSE(Verify(sk.Public(), Msg("forged"), sig));
}

TEST(SignatureTest, WrongKeyRejected) {
  SecretKey sk1 = SecretKey::FromSeed(StrBytes("seed-5"));
  SecretKey sk2 = SecretKey::FromSeed(StrBytes("seed-6"));
  Hash256 m = Msg("msg");
  EXPECT_FALSE(Verify(sk2.Public(), m, sk1.Sign(m)));
}

TEST(SignatureTest, TamperedSignatureRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-7"));
  Hash256 m = Msg("msg");
  Signature sig = sk.Sign(m);

  Signature bad_r = sig;
  bad_r.r = Curve().Fp().Add(bad_r.r, U256(1));
  EXPECT_FALSE(Verify(sk.Public(), m, bad_r));

  Signature bad_s = sig;
  bad_s.s = Curve().Fn().Add(bad_s.s, U256(1));
  EXPECT_FALSE(Verify(sk.Public(), m, bad_s));
}

TEST(SignatureTest, OutOfRangeComponentsRejected) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-8"));
  Hash256 m = Msg("msg");
  Signature sig = sk.Sign(m);

  Signature huge_r = sig;
  huge_r.r = Curve().P();  // >= p
  EXPECT_FALSE(Verify(sk.Public(), m, huge_r));

  Signature huge_s = sig;
  huge_s.s = Curve().N();  // >= n
  EXPECT_FALSE(Verify(sk.Public(), m, huge_s));
}

TEST(SignatureTest, SerializeRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-9"));
  Hash256 m = Msg("serialize me");
  Signature sig = sk.Sign(m);
  Bytes encoded = sig.Serialize();
  ASSERT_EQ(encoded.size(), 64u);
  auto decoded = Signature::Deserialize(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
  EXPECT_TRUE(Verify(sk.Public(), m, *decoded));
}

TEST(SignatureTest, DeserializeRejectsOutOfRange) {
  Bytes all_ff(64, 0xff);
  EXPECT_FALSE(Signature::Deserialize(all_ff).has_value());
  Bytes short_buf(63, 0);
  EXPECT_FALSE(Signature::Deserialize(short_buf).has_value());
}

TEST(SignatureTest, PublicKeySerializeRoundTrip) {
  SecretKey sk = SecretKey::FromSeed(StrBytes("seed-10"));
  Bytes encoded = sk.Public().Serialize();
  ASSERT_EQ(encoded.size(), 64u);
  auto decoded = PublicKey::Deserialize(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sk.Public());
}

TEST(SignatureTest, SeedsProduceDistinctKeys) {
  SecretKey a = SecretKey::FromSeed(StrBytes("alpha"));
  SecretKey b = SecretKey::FromSeed(StrBytes("beta"));
  EXPECT_NE(a.Public(), b.Public());
  // Same seed reproduces the same key.
  SecretKey a2 = SecretKey::FromSeed(StrBytes("alpha"));
  EXPECT_EQ(a.Public(), a2.Public());
}

// Parameterized sweep: many (seed, message) combinations round-trip, and a
// signature never validates under a different message or key.
class SignatureSweep : public ::testing::TestWithParam<int> {};

TEST_P(SignatureSweep, RoundTripAndCrossRejection) {
  int i = GetParam();
  SecretKey sk = SecretKey::FromSeed(StrBytes("sweep-seed-" + std::to_string(i)));
  Hash256 m = Msg("sweep-msg-" + std::to_string(i));
  Signature sig = sk.Sign(m);
  EXPECT_TRUE(Verify(sk.Public(), m, sig));
  Hash256 other = Msg("sweep-msg-" + std::to_string(i + 1));
  EXPECT_FALSE(Verify(sk.Public(), other, sig));
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SignatureSweep, ::testing::Range(0, 8));

// --- batched verification --------------------------------------------------

// A valid flood signed by a handful of signers: one VerifyJob per message,
// signers repeating so the batch path exercises its per-pk challenge merge.
struct BatchFixture {
  std::vector<SecretKey> signers;
  std::vector<Hash256> digests;
  std::vector<Signature> sigs;
  std::vector<VerifyJob> jobs;

  explicit BatchFixture(std::size_t n, std::size_t n_signers = 4) {
    for (std::size_t s = 0; s < n_signers; ++s) {
      signers.push_back(
          SecretKey::FromSeed(StrBytes("batch-signer-" + std::to_string(s))));
    }
    digests.reserve(n);
    sigs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      digests.push_back(Msg("batch-msg-" + std::to_string(i)));
      sigs.push_back(signers[i % n_signers].Sign(digests[i]));
    }
    jobs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      jobs[i] = {&signers[i % n_signers].Public(), &digests[i], &sigs[i]};
    }
  }
};

TEST(VerifyBatchTest, AllValidMatchesSingleShot) {
  BatchFixture fx(12);
  const std::vector<bool> batch = VerifyBatch(fx.jobs.data(), fx.jobs.size());
  ASSERT_EQ(batch.size(), fx.jobs.size());
  for (std::size_t i = 0; i < fx.jobs.size(); ++i) {
    EXPECT_TRUE(batch[i]) << "index " << i;
    EXPECT_EQ(batch[i], Verify(*fx.jobs[i].pk, *fx.jobs[i].digest,
                               *fx.jobs[i].sig));
  }
}

TEST(VerifyBatchTest, IdentifiesEachCorruptedIndex) {
  for (std::size_t corrupt_at : {0u, 3u, 7u}) {
    BatchFixture fx(8);
    fx.sigs[corrupt_at].s = Curve().Fn().Add(fx.sigs[corrupt_at].s, U256(1));
    const std::vector<bool> batch = VerifyBatch(fx.jobs.data(), fx.jobs.size());
    ASSERT_EQ(batch.size(), fx.jobs.size());
    for (std::size_t i = 0; i < fx.jobs.size(); ++i) {
      EXPECT_EQ(batch[i], i != corrupt_at) << "index " << i << " with "
                                           << corrupt_at << " corrupted";
    }
  }
}

TEST(VerifyBatchTest, MultipleCorruptionsAllIsolated) {
  BatchFixture fx(10);
  fx.sigs[1].r = Curve().Fp().Add(fx.sigs[1].r, U256(1));  // tampered r
  fx.digests[4] = Msg("substituted-message");              // wrong digest
  fx.sigs[8] = fx.sigs[0];                                 // sig/msg mismatch
  const std::vector<bool> batch = VerifyBatch(fx.jobs.data(), fx.jobs.size());
  ASSERT_EQ(batch.size(), fx.jobs.size());
  for (std::size_t i = 0; i < fx.jobs.size(); ++i) {
    const bool expect_ok = i != 1 && i != 4 && i != 8;
    EXPECT_EQ(batch[i], expect_ok) << "index " << i;
    EXPECT_EQ(batch[i], Verify(*fx.jobs[i].pk, *fx.jobs[i].digest,
                               *fx.jobs[i].sig))
        << "batch disagrees with single-shot at " << i;
  }
}

TEST(VerifyBatchTest, EmptyAndSingleElementBatches) {
  EXPECT_TRUE(VerifyBatch(nullptr, 0).empty());

  BatchFixture fx(1);
  EXPECT_EQ(VerifyBatch(fx.jobs.data(), 1), std::vector<bool>{true});
  fx.sigs[0].s = Curve().Fn().Add(fx.sigs[0].s, U256(1));
  EXPECT_EQ(VerifyBatch(fx.jobs.data(), 1), std::vector<bool>{false});
}

TEST(VerifyBatchTest, SingleSignerFloodMergesAndStillIsolatesFailures) {
  BatchFixture fx(16, /*n_signers=*/1);
  fx.sigs[5].s = Curve().Fn().Add(fx.sigs[5].s, U256(1));
  fx.sigs[11].s = Curve().Fn().Add(fx.sigs[11].s, U256(1));
  const std::vector<bool> batch = VerifyBatch(fx.jobs.data(), fx.jobs.size());
  ASSERT_EQ(batch.size(), fx.jobs.size());
  for (std::size_t i = 0; i < fx.jobs.size(); ++i) {
    EXPECT_EQ(batch[i], i != 5 && i != 11) << "index " << i;
  }
}

}  // namespace
}  // namespace dcert::crypto
