// On-demand index activation (AttachIndexWithBackfill) and the naive
// full-state-in-enclave baseline.
#include <gtest/gtest.h>

#include "dcert/issuer.h"
#include "dcert/naive_enclave.h"
#include "dcert/superlight.h"
#include "query/historical_index.h"
#include "query/keyword_index.h"
#include "workloads/workloads.h"

namespace dcert::core {
namespace {

using workloads::AccountPool;
using workloads::Workload;
using workloads::WorkloadGenerator;

struct Rig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 55};
  std::unique_ptr<WorkloadGenerator> gen;

  Rig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    ci = std::make_unique<CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    WorkloadGenerator::Params params;
    params.kind = Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    gen = std::make_unique<WorkloadGenerator>(params, pool);
  }

  chain::Block NextBlock(std::size_t txs = 5) {
    auto block = miner->MineBlock(gen->NextBlockTxs(txs), 100 + miner_node->Height());
    if (!block.ok()) throw std::runtime_error(block.message());
    if (!miner_node->SubmitBlock(block.value())) throw std::runtime_error("submit");
    return block.value();
  }
};

TEST(BackfillTest, MidChainAttachMatchesFromGenesisAttach) {
  // Reference CI: index attached at genesis.
  Rig reference;
  auto ref_index = std::make_shared<query::HistoricalIndex>("ref");
  reference.ci->AttachIndex(ref_index);

  // Late CI: same chain, index attached after 6 blocks.
  Rig late;

  std::vector<chain::Block> blocks;
  for (int i = 0; i < 6; ++i) blocks.push_back(reference.NextBlock());
  for (const auto& blk : blocks) {
    ASSERT_TRUE(reference.ci->ProcessBlockHierarchical(blk).ok());
    ASSERT_TRUE(late.ci->ProcessBlock(blk).ok());
  }

  auto late_index = std::make_shared<query::HistoricalIndex>("late");
  auto tip_cert = late.ci->AttachIndexWithBackfill(late_index);
  ASSERT_TRUE(tip_cert.ok()) << tip_cert.message();

  // Identical digests: the backfilled index certified the same history.
  EXPECT_EQ(late_index->CurrentDigest(), ref_index->CurrentDigest());
  EXPECT_EQ(late.ci->IndexCount(), 1u);
  // One index Ecall per historical block.
  EXPECT_EQ(late.ci->LastTiming().ecalls, 6u);

  // The tip certificate validates on a superlight client.
  SuperlightClient client(ExpectedEnclaveMeasurement());
  ASSERT_TRUE(client
                  .ValidateAndAccept(blocks.back().header, *late.ci->LatestCert())
                  .ok());
  EXPECT_TRUE(client
                  .AcceptIndexCert(blocks.back().header, tip_cert.value(),
                                   late_index->CurrentDigest(), "late")
                  .ok());

  // And the CI continues certifying both chain and index afterwards.
  chain::Block next = reference.NextBlock();
  ASSERT_TRUE(reference.ci->ProcessBlockHierarchical(next).ok());
  auto certs = late.ci->ProcessBlockHierarchical(next);
  ASSERT_TRUE(certs.ok()) << certs.message();
  EXPECT_EQ(late_index->CurrentDigest(), ref_index->CurrentDigest());
}

TEST(BackfillTest, GenesisChainRejected) {
  Rig rig;
  auto index = std::make_shared<query::HistoricalIndex>();
  EXPECT_FALSE(rig.ci->AttachIndexWithBackfill(index).ok());
}

TEST(BackfillTest, KeywordIndexBackfills) {
  Rig rig;
  std::vector<chain::Block> blocks;
  for (int i = 0; i < 4; ++i) {
    chain::Block blk = rig.NextBlock();
    ASSERT_TRUE(rig.ci->ProcessBlock(blk).ok());
    blocks.push_back(blk);
  }
  auto kw = std::make_shared<query::KeywordIndex>("kw-late");
  auto cert = rig.ci->AttachIndexWithBackfill(kw);
  ASSERT_TRUE(cert.ok()) << cert.message();

  // The backfilled index answers queries over the pre-attachment history.
  auto proof = kw->Query({"c3000"});
  auto result = query::KeywordIndex::VerifyQuery(kw->CurrentDigest(), {"c3000"},
                                                 proof);
  ASSERT_TRUE(result.ok()) << result.message();
  std::size_t total_txs = 0;
  for (const auto& blk : blocks) total_txs += blk.txs.size();
  EXPECT_EQ(result.value().size(), total_txs);
}

TEST(NaiveEnclaveTest, CertifiesAndValidates) {
  Rig rig;
  NaiveCertificateIssuer naive(rig.config, rig.registry);
  SuperlightClient client(NaiveEnclaveMeasurement());
  for (int i = 0; i < 4; ++i) {
    chain::Block blk = rig.NextBlock();
    auto cert = naive.ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << cert.message();
    ASSERT_TRUE(client.ValidateAndAccept(blk.header, cert.value()).ok());
  }
  EXPECT_EQ(client.Height(), 4u);
}

TEST(NaiveEnclaveTest, DistinctMeasurementFromStatelessProgram) {
  EXPECT_NE(NaiveEnclaveMeasurement(), ExpectedEnclaveMeasurement());
  // A client pinning the stateless enclave rejects naive certificates.
  Rig rig;
  NaiveCertificateIssuer naive(rig.config, rig.registry);
  chain::Block blk = rig.NextBlock();
  auto cert = naive.ProcessBlock(blk);
  ASSERT_TRUE(cert.ok());
  SuperlightClient strict(ExpectedEnclaveMeasurement());
  EXPECT_FALSE(strict.ValidateAndAccept(blk.header, cert.value()).ok());
}

TEST(NaiveEnclaveTest, RejectsTamperedBlocks) {
  Rig rig;
  NaiveCertificateIssuer naive(rig.config, rig.registry);
  chain::Block blk = rig.NextBlock();
  chain::Block forged = blk;
  forged.header.state_root[0] ^= 1;
  chain::MineNonce(forged.header);
  EXPECT_FALSE(naive.ProcessBlock(forged).ok());
  EXPECT_TRUE(naive.ProcessBlock(blk).ok());
}

TEST(NaiveEnclaveTest, EpcPressureGrowsWithState) {
  // With a tiny EPC, the naive issuer's paging charge reflects the growing
  // resident state while the block content stays the same. Assert on the
  // deterministic paged-page count, not the wall-clock-derived modelled time
  // (a scheduler hiccup on one block dwarfs the paging delta).
  Rig rig;
  // A wide key space so most writes create fresh state entries and the
  // resident state grows by whole pages every block.
  WorkloadGenerator::Params wide;
  wide.kind = Workload::kKvStore;
  wide.instances_per_workload = 1;
  wide.kv_keys = 4096;
  rig.gen = std::make_unique<WorkloadGenerator>(wide, rig.pool);
  sgxsim::CostModelParams tiny;
  tiny.epc_limit_bytes = 1 << 10;  // 1 KB — any real state overflows
  NaiveCertificateIssuer naive(rig.config, rig.registry, tiny);
  std::vector<std::uint64_t> paged;
  std::uint64_t prev_pages = naive.EnclaveHandle().Costs().paged_pages();
  for (int i = 0; i < 5; ++i) {
    chain::Block blk = rig.NextBlock(64);
    ASSERT_TRUE(naive.ProcessBlock(blk).ok());
    const std::uint64_t now = naive.EnclaveHandle().Costs().paged_pages();
    paged.push_back(now - prev_pages);
    prev_pages = now;
  }
  // State grows monotonically => per-block paging charge grows.
  EXPECT_GT(naive.Program().ResidentStateBytes(), tiny.epc_limit_bytes);
  EXPECT_GT(paged.back(), paged.front());
}

}  // namespace
}  // namespace dcert::core
