// Determinism proofs for the parallel hot paths: whatever the scheduling,
// the parallel implementations must produce byte-identical proofs, roots,
// digests, and certificates to their serial counterparts.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"
#include "dcert/issuer.h"
#include "mht/smt.h"
#include "workloads/workloads.h"

namespace dcert {
namespace {

Hash256 RandomHash(Rng& rng) { return crypto::Sha256::Digest(rng.NextBytes(16)); }

mht::SparseMerkleTree RandomTree(Rng& rng, std::size_t n,
                                 std::vector<Hash256>* keys_out = nullptr) {
  mht::SparseMerkleTree tree;
  for (std::size_t i = 0; i < n; ++i) {
    Hash256 key = RandomHash(rng);
    tree.Update(key, RandomHash(rng));
    if (keys_out != nullptr) keys_out->push_back(key);
  }
  return tree;
}

TEST(ParallelEquivalenceTest, ProveKeysParallelMatchesSerial) {
  common::ThreadPool pool(4);
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    std::vector<Hash256> present;
    mht::SparseMerkleTree tree = RandomTree(rng, 300, &present);
    // Mix of present keys (with duplicates) and absent keys.
    std::vector<Hash256> query;
    for (int i = 0; i < 200; ++i) {
      query.push_back(present[rng.NextBelow(present.size())]);
    }
    for (int i = 0; i < 50; ++i) query.push_back(RandomHash(rng));
    query.push_back(query.front());

    mht::SmtMultiProof serial = tree.ProveKeysSerial(query);
    mht::SmtMultiProof parallel = tree.ProveKeysParallel(query, pool);
    EXPECT_EQ(serial.Serialize(), parallel.Serialize()) << "round " << round;
    EXPECT_EQ(serial.Serialize(), tree.ProveKeys(query).Serialize());
  }
}

TEST(ParallelEquivalenceTest, ProveKeysParallelEmptyAndTiny) {
  common::ThreadPool pool(4);
  Rng rng(8);
  mht::SparseMerkleTree tree = RandomTree(rng, 10);
  EXPECT_EQ(tree.ProveKeysParallel({}, pool).Serialize(),
            tree.ProveKeysSerial({}).Serialize());
  std::vector<Hash256> one{RandomHash(rng)};
  EXPECT_EQ(tree.ProveKeysParallel(one, pool).Serialize(),
            tree.ProveKeysSerial(one).Serialize());
}

TEST(ParallelEquivalenceTest, UpdateBatchMatchesSerialUpdates) {
  common::ThreadPool pool(4);
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    std::vector<Hash256> keys;
    mht::SparseMerkleTree serial = RandomTree(rng, 200, &keys);
    // Rebuild an identical tree for the batched run.
    mht::SparseMerkleTree batched;
    for (const Hash256& k : keys) batched.Update(k, serial.Get(k));
    ASSERT_EQ(serial.Root(), batched.Root());

    // A batch mixing overwrites, fresh inserts, and deletions.
    std::map<Hash256, Hash256> batch;
    for (int i = 0; i < 100; ++i) {
      batch[keys[rng.NextBelow(keys.size())]] = RandomHash(rng);  // overwrite
    }
    for (int i = 0; i < 100; ++i) batch[RandomHash(rng)] = RandomHash(rng);
    for (int i = 0; i < 50; ++i) {
      batch[keys[rng.NextBelow(keys.size())]] = Hash256();  // delete
    }

    for (const auto& [k, vh] : batch) serial.Update(k, vh);
    batched.UpdateBatchWith(batch, pool);

    EXPECT_EQ(serial.Root(), batched.Root()) << "round " << round;
    EXPECT_EQ(serial.Size(), batched.Size());
    // Structure equality through proofs over every touched key.
    std::vector<Hash256> touched;
    for (const auto& [k, vh] : batch) touched.push_back(k);
    EXPECT_EQ(serial.ProveKeysSerial(touched).Serialize(),
              batched.ProveKeysSerial(touched).Serialize());
    // Subsequent single-key updates behave identically on both trees.
    Hash256 extra_key = RandomHash(rng);
    Hash256 extra_val = RandomHash(rng);
    serial.Update(extra_key, extra_val);
    batched.Update(extra_key, extra_val);
    EXPECT_EQ(serial.Root(), batched.Root());
  }
}

TEST(ParallelEquivalenceTest, UpdateBatchAutoPathMatches) {
  Rng rng(10);
  std::vector<Hash256> keys;
  mht::SparseMerkleTree a = RandomTree(rng, 100, &keys);
  mht::SparseMerkleTree b;
  for (const Hash256& k : keys) b.Update(k, a.Get(k));

  std::map<Hash256, Hash256> batch;
  for (int i = 0; i < 200; ++i) batch[RandomHash(rng)] = RandomHash(rng);
  for (const auto& [k, vh] : batch) a.Update(k, vh);
  b.UpdateBatch(batch);
  EXPECT_EQ(a.Root(), b.Root());
}

TEST(ParallelEquivalenceTest, PipelinedCertsMatchSerialProcessBlock) {
  chain::ChainConfig config;
  config.difficulty_bits = 4;
  auto registry = workloads::MakeBlockbenchRegistry(2);
  workloads::AccountPool accounts(20, 42);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 2;
  params.kv_keys = 50;
  workloads::WorkloadGenerator gen(params, accounts);

  chain::FullNode miner_node(config, registry);
  chain::Miner miner(miner_node);
  std::vector<chain::Block> blocks;
  for (int i = 0; i < 8; ++i) {
    auto blk = miner.MineBlock(gen.NextBlockTxs(10),
                               1700000000 + miner_node.Height() * 15);
    ASSERT_TRUE(blk.ok()) << blk.message();
    ASSERT_TRUE(miner_node.SubmitBlock(blk.value()).ok());
    blocks.push_back(std::move(blk.value()));
  }

  core::CertificateIssuer serial_ci(config, registry);
  core::CertificateIssuer pipe_ci(config, registry);

  std::vector<core::BlockCertificate> serial_certs;
  for (const chain::Block& blk : blocks) {
    auto cert = serial_ci.ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << cert.message();
    serial_certs.push_back(cert.value());
  }

  auto pipe_certs = pipe_ci.ProcessBlocksPipelined(blocks);
  ASSERT_TRUE(pipe_certs.ok()) << pipe_certs.message();
  ASSERT_EQ(pipe_certs.value().size(), serial_certs.size());
  for (std::size_t i = 0; i < serial_certs.size(); ++i) {
    EXPECT_EQ(pipe_certs.value()[i].Serialize(), serial_certs[i].Serialize())
        << "block " << i;
  }

  // Node state, tip certificate, and timing window agree with serial runs.
  EXPECT_EQ(pipe_ci.Node().Tip().header.Hash(),
            serial_ci.Node().Tip().header.Hash());
  EXPECT_EQ(pipe_ci.Node().State().Root(), serial_ci.Node().State().Root());
  ASSERT_TRUE(pipe_ci.LatestCert().has_value());
  EXPECT_EQ(pipe_ci.LatestCert()->Serialize(),
            serial_ci.LatestCert()->Serialize());
  EXPECT_EQ(pipe_ci.LastTiming().blocks, blocks.size());
  EXPECT_EQ(pipe_ci.LastTiming().ecalls, blocks.size());
  EXPECT_GT(pipe_ci.LastTiming().span_wall_ns, 0u);

  // The pipelined chain keeps extending normally afterwards.
  auto blk = miner.MineBlock(gen.NextBlockTxs(10),
                             1700000000 + miner_node.Height() * 15);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(miner_node.SubmitBlock(blk.value()).ok());
  auto tail = pipe_ci.ProcessBlock(blk.value());
  ASSERT_TRUE(tail.ok()) << tail.message();
}

TEST(ParallelEquivalenceTest, PipelinedRejectsNonExtendingSpan) {
  chain::ChainConfig config;
  config.difficulty_bits = 4;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  core::CertificateIssuer ci(config, registry);
  EXPECT_FALSE(ci.ProcessBlocksPipelined({}).ok());

  chain::Block bogus;  // does not extend the tip
  bogus.header.height = 5;
  auto result = ci.ProcessBlocksPipelined({bogus});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(ci.LatestCert().has_value());
}

}  // namespace
}  // namespace dcert
