// Batched certification (SigGenSpan / ProcessBlockBatch).
#include <gtest/gtest.h>

#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "query/historical_index.h"
#include "workloads/workloads.h"

namespace dcert::core {
namespace {

using workloads::AccountPool;
using workloads::Workload;
using workloads::WorkloadGenerator;

struct BatchRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 91};
  std::unique_ptr<WorkloadGenerator> gen;

  BatchRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    ci = std::make_unique<CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    WorkloadGenerator::Params params;
    params.kind = Workload::kKvStore;
    params.instances_per_workload = 1;
    gen = std::make_unique<WorkloadGenerator>(params, pool);
  }

  std::vector<chain::Block> NextBlocks(int n, std::size_t txs = 4) {
    std::vector<chain::Block> blocks;
    for (int i = 0; i < n; ++i) {
      auto block =
          miner->MineBlock(gen->NextBlockTxs(txs), 100 + miner_node->Height());
      if (!block.ok()) throw std::runtime_error(block.message());
      if (!miner_node->SubmitBlock(block.value())) throw std::runtime_error("s");
      blocks.push_back(block.value());
    }
    return blocks;
  }
};

TEST(BatchTest, SpanCertValidatesOnClient) {
  BatchRig rig;
  auto blocks = rig.NextBlocks(4);
  auto cert = rig.ci->ProcessBlockBatch(blocks);
  ASSERT_TRUE(cert.ok()) << cert.message();
  EXPECT_EQ(rig.ci->Node().Height(), 4u);
  EXPECT_EQ(rig.ci->LastTiming().ecalls, 1u);

  SuperlightClient client(ExpectedEnclaveMeasurement());
  EXPECT_TRUE(client.ValidateAndAccept(blocks.back().header, cert.value()).ok());
  EXPECT_EQ(client.Height(), 4u);
}

TEST(BatchTest, MixedBatchAndSingleCertificationChains) {
  BatchRig rig;
  auto first = rig.NextBlocks(3);
  ASSERT_TRUE(rig.ci->ProcessBlockBatch(first).ok());
  // Continue with single-block certification: the recursive chain resumes
  // from the span certificate.
  auto next = rig.NextBlocks(2);
  for (const auto& blk : next) {
    auto cert = rig.ci->ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << cert.message();
  }
  EXPECT_EQ(rig.ci->Node().Height(), 5u);
}

TEST(BatchTest, EmptyAndNonContiguousBatchesRejected) {
  BatchRig rig;
  EXPECT_FALSE(rig.ci->ProcessBlockBatch({}).ok());
  auto blocks = rig.NextBlocks(3);
  // Out of order: the second block does not extend the tip after the first
  // was skipped.
  std::vector<chain::Block> gap{blocks[1], blocks[2]};
  EXPECT_FALSE(rig.ci->ProcessBlockBatch(gap).ok());
}

TEST(BatchTest, TamperedSpanBlockRejectedByEnclave) {
  // Drive SigGenSpan directly: a tampered middle block fails the whole span.
  BatchRig rig;
  auto blocks = rig.NextBlocks(3);

  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(rig.config).header.Hash();
  ec.registry_digest = rig.registry->Digest();
  ec.difficulty_bits = rig.config.difficulty_bits;
  CertEnclaveProgram program(ec, rig.registry, StrBytes("batch-key"));

  chain::FullNode replay(rig.config, rig.registry);
  std::vector<StateUpdateProof> proofs;
  for (const auto& blk : blocks) {
    auto exec = chain::ExecuteBlockTxs(blk.txs, *rig.registry, replay.State());
    ASSERT_TRUE(exec.ok());
    proofs.push_back(BuildStateUpdateProof(exec.value().reads,
                                           exec.value().writes, replay.State()));
    ASSERT_TRUE(replay.SubmitBlock(blk).ok());
  }
  chain::BlockHeader genesis = chain::MakeGenesisBlock(rig.config).header;

  // Genuine span signs.
  auto good = program.SigGenSpan(genesis, std::nullopt, blocks, proofs);
  ASSERT_TRUE(good.ok()) << good.message();

  // Tampered middle block: rejected.
  auto tampered = blocks;
  tampered[1].header.state_root[0] ^= 1;
  chain::MineNonce(tampered[1].header);
  EXPECT_FALSE(program.SigGenSpan(genesis, std::nullopt, tampered, proofs).ok());

  // Mismatched proof count: rejected.
  std::vector<StateUpdateProof> short_proofs(proofs.begin(), proofs.end() - 1);
  EXPECT_FALSE(program.SigGenSpan(genesis, std::nullopt, blocks, short_proofs).ok());
}

TEST(BatchTest, BatchingDisablesBackfill) {
  BatchRig rig;
  ASSERT_TRUE(rig.ci->ProcessBlockBatch(rig.NextBlocks(2)).ok());
  // Intermediate blocks carry no certificates, so late index attachment
  // (which must anchor each historical block) refuses cleanly.
  EXPECT_FALSE(
      rig.ci->AttachIndexWithBackfill(std::make_shared<query::HistoricalIndex>())
          .ok());
}

}  // namespace
}  // namespace dcert::core
