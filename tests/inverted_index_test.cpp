// Authenticated inverted index: conjunctive queries and certified updates.
#include "mht/inverted_index.h"

#include <gtest/gtest.h>

namespace dcert::mht {
namespace {

TxLocator Loc(std::uint64_t block, std::uint32_t tx) { return {block, tx}; }

InvertedIndex BuildSample() {
  InvertedIndex idx;
  idx.Add("stock", Loc(1, 0));
  idx.Add("bank", Loc(1, 0));
  idx.Add("stock", Loc(2, 1));
  idx.Add("bank", Loc(3, 0));
  idx.Add("stock", Loc(3, 0));
  idx.Add("gold", Loc(4, 2));
  return idx;
}

TEST(InvertedIndexTest, AddRejectsOutOfOrderLocators) {
  InvertedIndex idx;
  idx.Add("kw", Loc(5, 0));
  EXPECT_THROW(idx.Add("kw", Loc(4, 0)), std::invalid_argument);
  EXPECT_THROW(idx.Add("kw", Loc(5, 0)), std::invalid_argument);  // duplicate
  idx.Add("kw", Loc(5, 1));  // same block, later tx is fine
}

TEST(InvertedIndexTest, ChainDigestIsFoldOfExtend) {
  std::vector<TxLocator> locs{Loc(1, 0), Loc(2, 3), Loc(9, 1)};
  Hash256 digest;
  for (auto l : locs) digest = InvertedIndex::ChainExtend(digest, l);
  EXPECT_EQ(InvertedIndex::ChainDigest(locs), digest);
  EXPECT_TRUE(InvertedIndex::ChainDigest({}).IsZero());
}

TEST(InvertedIndexTest, SingleKeywordQuery) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock"});
  auto results = InvertedIndex::VerifyConjunctive(idx.Root(), {"stock"}, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_EQ(results.value(), (std::vector<TxLocator>{Loc(1, 0), Loc(2, 1), Loc(3, 0)}));
}

TEST(InvertedIndexTest, ConjunctiveQueryIntersects) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock", "bank"});
  auto results = InvertedIndex::VerifyConjunctive(idx.Root(), {"stock", "bank"}, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_EQ(results.value(), (std::vector<TxLocator>{Loc(1, 0), Loc(3, 0)}));
}

TEST(InvertedIndexTest, UnknownKeywordGivesEmptyIntersection) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock", "unknown"});
  auto results =
      InvertedIndex::VerifyConjunctive(idx.Root(), {"stock", "unknown"}, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_TRUE(results.value().empty());
}

TEST(InvertedIndexTest, EmptyKeywordListRejected) {
  InvertedIndex idx = BuildSample();
  KeywordQueryProof proof;
  EXPECT_FALSE(InvertedIndex::VerifyConjunctive(idx.Root(), {}, proof).ok());
}

TEST(InvertedIndexTest, TamperedPostingListRejected) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock"});
  proof.postings["stock"].pop_back();  // hide a result
  EXPECT_FALSE(InvertedIndex::VerifyConjunctive(idx.Root(), {"stock"}, proof).ok());
}

TEST(InvertedIndexTest, InjectedPostingRejected) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"gold"});
  proof.postings["gold"].push_back(Loc(99, 0));  // fabricate a result
  EXPECT_FALSE(InvertedIndex::VerifyConjunctive(idx.Root(), {"gold"}, proof).ok());
}

TEST(InvertedIndexTest, MissingKeywordInProofRejected) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock"});
  EXPECT_FALSE(
      InvertedIndex::VerifyConjunctive(idx.Root(), {"stock", "bank"}, proof).ok());
}

TEST(InvertedIndexTest, WrongRootRejected) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock"});
  Hash256 wrong = idx.Root();
  wrong[0] ^= 1;
  EXPECT_FALSE(InvertedIndex::VerifyConjunctive(wrong, {"stock"}, proof).ok());
}

TEST(InvertedIndexTest, CertifiedUpdateMatchesLiveIndex) {
  InvertedIndex idx = BuildSample();
  Hash256 old_root = idx.Root();

  InvertedIndex::WriteData writes;
  writes["stock"] = {Loc(5, 0), Loc(5, 2)};
  writes["silver"] = {Loc(5, 1)};  // brand-new keyword

  auto update_proof = idx.ProveUpdate(writes);
  auto predicted = InvertedIndex::ApplyUpdate(old_root, update_proof, writes);
  ASSERT_TRUE(predicted.ok()) << predicted.message();

  idx.ApplyWrites(writes);
  EXPECT_EQ(predicted.value(), idx.Root());
}

TEST(InvertedIndexTest, ApplyUpdateRejectsWrongOldRoot) {
  InvertedIndex idx = BuildSample();
  InvertedIndex::WriteData writes;
  writes["stock"] = {Loc(5, 0)};
  auto proof = idx.ProveUpdate(writes);
  Hash256 wrong = idx.Root();
  wrong[4] ^= 1;
  EXPECT_FALSE(InvertedIndex::ApplyUpdate(wrong, proof, writes).ok());
}

TEST(InvertedIndexTest, ApplyUpdateRejectsTamperedOldBucket) {
  InvertedIndex idx = BuildSample();
  InvertedIndex::WriteData writes;
  writes["stock"] = {Loc(5, 0)};
  auto proof = idx.ProveUpdate(writes);
  ASSERT_FALSE(proof.old_buckets.empty());
  proof.old_buckets.begin()->second[0] ^= 1;
  EXPECT_FALSE(InvertedIndex::ApplyUpdate(idx.Root(), proof, writes).ok());
}

TEST(InvertedIndexTest, ApplyUpdateRejectsEmptyWriteList) {
  InvertedIndex idx = BuildSample();
  InvertedIndex::WriteData writes;
  writes["stock"] = {};
  auto proof = idx.ProveUpdate(writes);
  EXPECT_FALSE(InvertedIndex::ApplyUpdate(idx.Root(), proof, writes).ok());
}

TEST(InvertedIndexTest, QueryProofSerializationRoundTrip) {
  InvertedIndex idx = BuildSample();
  auto proof = idx.QueryConjunctive({"stock", "bank"});
  Bytes wire = proof.Serialize();
  auto decoded = KeywordQueryProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  auto results = InvertedIndex::VerifyConjunctive(idx.Root(), {"stock", "bank"},
                                                  decoded.value());
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 2u);

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(KeywordQueryProof::Deserialize(truncated).ok());
}

TEST(InvertedIndexTest, UpdateProofSerializationRoundTrip) {
  InvertedIndex idx = BuildSample();
  InvertedIndex::WriteData writes;
  writes["stock"] = {Loc(7, 0)};
  auto proof = idx.ProveUpdate(writes);
  auto decoded = InvertedIndex::UpdateProof::Deserialize(proof.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  auto applied = InvertedIndex::ApplyUpdate(idx.Root(), decoded.value(), writes);
  ASSERT_TRUE(applied.ok()) << applied.message();
  idx.ApplyWrites(writes);
  EXPECT_EQ(applied.value(), idx.Root());
}

}  // namespace
}  // namespace dcert::mht
