// common::RecordLog: the shared durable record format under the block and
// certificate logs — round trips, torn-tail recovery, truncation, and the
// seeded crash-injection sites.
#include <gtest/gtest.h>

#include <fstream>

#include "common/crash_point.h"
#include "common/record_log.h"

namespace dcert::common {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

Bytes Payload(std::size_t n, std::uint8_t tag) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(tag + i);
  return b;
}

std::uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<std::uint64_t>(in.tellg());
}

class CrashGuard {
 public:
  ~CrashGuard() { CrashPoints::Global().Disarm(); }
};

TEST(RecordLogTest, AppendGetRoundTrip) {
  const std::string path = TempPath("rlog_roundtrip.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.message();
  EXPECT_EQ(log.value().Count(), 0u);
  EXPECT_FALSE(log.value().RecoveredFromTornTail());

  ASSERT_TRUE(log.value().Append(Payload(10, 1)).ok());
  ASSERT_TRUE(log.value().Append(Payload(0, 0)).ok());  // empty payload is legal
  ASSERT_TRUE(log.value().Append(Payload(300, 7)).ok());
  EXPECT_EQ(log.value().Count(), 3u);
  EXPECT_EQ(log.value().Get(0).value(), Payload(10, 1));
  EXPECT_EQ(log.value().Get(1).value(), Bytes{});
  EXPECT_EQ(log.value().Get(2).value(), Payload(300, 7));
  EXPECT_FALSE(log.value().Get(3).ok());
}

TEST(RecordLogTest, ReopenRestoresIndex) {
  const std::string path = TempPath("rlog_reopen.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(20, 3)).ok());
    ASSERT_TRUE(log.value().Append(Payload(40, 9)).ok());
  }
  auto reopened = RecordLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 2u);
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
  EXPECT_EQ(reopened.value().Get(1).value(), Payload(40, 9));
}

TEST(RecordLogTest, TornTailIsTruncatedOnOpenAndStaysGone) {
  const std::string path = TempPath("rlog_torn.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(16, 1)).ok());
    ASSERT_TRUE(log.value().Append(Payload(16, 2)).ok());
  }
  const std::uint64_t intact_size = FileSize(path);
  {
    // A crash mid-append: header + part of the payload.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = "TRCD\x10\x00\x00\x00garbage";
    out.write(torn, sizeof(torn) - 1);
  }
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log.value().RecoveredFromTornTail());
    EXPECT_EQ(log.value().Count(), 2u);
    EXPECT_EQ(log.value().Get(1).value(), Payload(16, 2));
    // The tail was PHYSICALLY truncated, not just skipped: a second reopen
    // must see a clean file.
    EXPECT_EQ(FileSize(path), intact_size);
    ASSERT_TRUE(log.value().Append(Payload(16, 3)).ok());
  }
  auto again = RecordLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().RecoveredFromTornTail());
  EXPECT_EQ(again.value().Count(), 3u);
}

TEST(RecordLogTest, CorruptedPayloadTailIsDropped) {
  const std::string path = TempPath("rlog_corrupt.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(32, 5)).ok());
    ASSERT_TRUE(log.value().Append(Payload(32, 6)).ok());
  }
  {
    // Flip one byte in the LAST record's payload (CRC now fails).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().RecoveredFromTornTail());
  EXPECT_EQ(log.value().Count(), 1u);
  EXPECT_EQ(log.value().Get(0).value(), Payload(32, 5));
}

TEST(RecordLogTest, TruncateToDropsTailRecords) {
  const std::string path = TempPath("rlog_trunc.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.value().Append(Payload(8, static_cast<std::uint8_t>(i))).ok());
  }
  EXPECT_FALSE(log.value().TruncateTo(6).ok());  // beyond count
  ASSERT_TRUE(log.value().TruncateTo(5).ok());   // no-op
  ASSERT_TRUE(log.value().TruncateTo(2).ok());
  EXPECT_EQ(log.value().Count(), 2u);
  EXPECT_FALSE(log.value().Get(2).ok());
  // Appends continue cleanly after truncation, and survive reopen.
  ASSERT_TRUE(log.value().Append(Payload(8, 9)).ok());
  auto reopened = RecordLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 3u);
  EXPECT_EQ(reopened.value().Get(2).value(), Payload(8, 9));
}

TEST(RecordLogTest, FsyncOnAppendTogglesAndFsyncWorks) {
  const std::string path = TempPath("rlog_fsync.bin");
  std::remove(path.c_str());
  RecordLog::Options options;
  options.name = "fslog";
  options.fsync_on_append = true;
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().FsyncOnAppend());
  ASSERT_TRUE(log.value().Append(Payload(4, 1)).ok());
  log.value().SetFsyncOnAppend(false);
  ASSERT_TRUE(log.value().Append(Payload(4, 2)).ok());
  ASSERT_TRUE(log.value().Fsync().ok());
  EXPECT_EQ(log.value().Count(), 2u);
}

TEST(RecordLogTest, ArmedCrashSiteFiresOnceWithCountdown) {
  const std::string path = TempPath("rlog_crash_after.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());

  // Fire on the SECOND append, after the bytes hit the file but before the
  // record is indexed.
  CrashPoints::Global().Arm("tlog.append.after", 2);
  ASSERT_TRUE(log.value().Append(Payload(8, 1)).ok());
  EXPECT_THROW(log.value().Append(Payload(8, 2)), CrashInjected);
  EXPECT_TRUE(CrashPoints::Global().Fired());
  EXPECT_EQ(CrashPoints::Global().HitCount("tlog.append.after"), 2u);
  // The site self-disarms when it fires: recovery-time appends run through.
  EXPECT_FALSE(CrashPoints::Global().Armed());

  // The in-memory index never saw record 2, but its bytes are on disk — a
  // reopen (recovery) finds the complete record and keeps it.
  auto reopened = RecordLog::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 2u);
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
}

TEST(RecordLogTest, TornCrashSiteLeavesTornRecordForRecovery) {
  const std::string path = TempPath("rlog_crash_torn.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value().Append(Payload(64, 1)).ok());

  CrashPoints::Global().Arm("tlog.append.torn", 1);
  EXPECT_THROW(log.value().Append(Payload(64, 2)), CrashInjected);
  // Header plus half the payload made it to disk: exactly a power loss
  // mid-write. Recovery truncates it.
  auto reopened = RecordLog::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().RecoveredFromTornTail());
  EXPECT_EQ(reopened.value().Count(), 1u);
  EXPECT_EQ(reopened.value().Get(0).value(), Payload(64, 1));
}

TEST(RecordLogTest, BeforeCrashSiteLeavesFileUntouched) {
  const std::string path = TempPath("rlog_crash_before.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value().Append(Payload(8, 1)).ok());
  const std::uint64_t size_before = FileSize(path);

  CrashPoints::Global().Arm("tlog.append.before", 1);
  EXPECT_THROW(log.value().Append(Payload(8, 2)), CrashInjected);
  EXPECT_EQ(FileSize(path), size_before);
}

TEST(RecordLogTest, DisarmedSitesAreFree) {
  // No Arm(): every Hit is an early return; behavior identical to no sites.
  const std::string path = TempPath("rlog_disarmed.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(log.value().Append(Payload(8, static_cast<std::uint8_t>(i))).ok());
  }
  EXPECT_EQ(log.value().Count(), 100u);
  EXPECT_FALSE(CrashPoints::Global().Fired());
}

// ---------------------------------------------------------------------------
// Segmented log: rotation, sidecar indexes, compaction, and the crash sites
// inside the rename/tombstone protocols.

RecordLog::Options SegOptions(std::uint64_t max_records,
                              bool mmap_sealed = true) {
  RecordLog::Options options;
  options.name = "seglog";
  options.segment_max_records = max_records;
  options.mmap_sealed = mmap_sealed;
  return options;
}

/// Removes the log and every per-segment/manifest file a prior run left.
void RemoveLogFamily(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  for (int first = 0; first < 64; ++first) {
    const std::string seg = path + ".seg." + std::to_string(first);
    std::remove(seg.c_str());
    std::remove((seg + ".idx").c_str());
  }
}

TEST(SegmentedRecordLogTest, RotationPreservesLogicalIndexing) {
  const std::string path = TempPath("rlog_seg_rotate.bin");
  RemoveLogFamily(path);
  {
    auto log = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(log.ok()) << log.message();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(log.value().Append(Payload(24, static_cast<std::uint8_t>(i))).ok());
    }
    // Rotation is lazy (on the append that overflows): 10 records with max 4
    // seal [0,3] and [4,7], leaving 8-9 active.
    EXPECT_EQ(log.value().Count(), 10u);
    EXPECT_EQ(log.value().SegmentCount(), 2u);
    EXPECT_EQ(log.value().BaseIndex(), 0u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(log.value().Get(i).value(), Payload(24, static_cast<std::uint8_t>(i)))
          << "record " << i;
    }
  }
  auto reopened = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(reopened.ok()) << reopened.message();
  EXPECT_EQ(reopened.value().Count(), 10u);
  EXPECT_EQ(reopened.value().SegmentCount(), 2u);
  EXPECT_FALSE(reopened.value().SidecarRebuilt());  // sidecars loaded clean
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(reopened.value().Get(i).value(),
              Payload(24, static_cast<std::uint8_t>(i)));
  }
  // Appends keep flowing across the reopen, sealing further segments.
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(
        reopened.value().Append(Payload(24, static_cast<std::uint8_t>(i))).ok());
  }
  EXPECT_EQ(reopened.value().Count(), 14u);
  EXPECT_EQ(reopened.value().Get(13).value(), Payload(24, 13));
}

TEST(SegmentedRecordLogTest, PreadFallbackMatchesMmapReads) {
  const std::string path = TempPath("rlog_seg_pread.bin");
  RemoveLogFamily(path);
  {
    auto log = RecordLog::Open(path, SegOptions(3));
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(log.value().Append(Payload(50, static_cast<std::uint8_t>(i))).ok());
    }
  }
  auto mapped = RecordLog::Open(path, SegOptions(3, /*mmap_sealed=*/true));
  auto pread = RecordLog::Open(path, SegOptions(3, /*mmap_sealed=*/false));
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(pread.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mapped.value().Get(i).value(), pread.value().Get(i).value())
        << "record " << i;
  }
}

TEST(SegmentedRecordLogTest, CorruptSidecarIsRebuiltOnceAndRepairPersists) {
  const std::string path = TempPath("rlog_seg_sidecar.bin");
  RemoveLogFamily(path);
  {
    auto log = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(log.value().Append(Payload(16, static_cast<std::uint8_t>(i))).ok());
    }
  }
  {
    // Flip a byte in the sealed segment's sidecar: its CRC now fails.
    std::fstream f(path + ".seg.0.idx",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);
    f.put('\xAA');
  }
  {
    auto log = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(log.ok()) << log.message();
    EXPECT_TRUE(log.value().SidecarRebuilt());
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(log.value().Get(i).value(),
                Payload(16, static_cast<std::uint8_t>(i)));
    }
  }
  // The rebuild rewrote the sidecar durably: the next open loads it clean.
  auto again = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().SidecarRebuilt());

  // A deleted sidecar is the same story.
  ASSERT_EQ(std::remove((path + ".seg.0.idx").c_str()), 0);
  auto rebuilt = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt.value().SidecarRebuilt());
  EXPECT_EQ(rebuilt.value().Get(3).value(), Payload(16, 3));
}

TEST(SegmentedRecordLogTest, CompactBelowDropsOnlyWholeSealedSegments) {
  const std::string path = TempPath("rlog_seg_compact.bin");
  RemoveLogFamily(path);
  auto log = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(log.value().Append(Payload(16, static_cast<std::uint8_t>(i))).ok());
  }
  ASSERT_EQ(log.value().SegmentCount(), 2u);  // [0,3], [4,7]; 8-11 active

  // Floor 6 cuts through segment [4,7]: only [0,3] is removable.
  ASSERT_TRUE(log.value().CompactBelow(6).ok());
  EXPECT_EQ(log.value().BaseIndex(), 4u);
  EXPECT_EQ(log.value().SegmentCount(), 1u);
  EXPECT_EQ(log.value().Count(), 12u);  // logical count includes compacted
  EXPECT_FALSE(log.value().Get(3).ok());
  EXPECT_EQ(log.value().Get(4).value(), Payload(16, 4));

  // Floor beyond the count is a caller bug; floor at the count compacts all
  // sealed history but never touches the active segment.
  EXPECT_FALSE(log.value().CompactBelow(13).ok());
  ASSERT_TRUE(log.value().CompactBelow(12).ok());
  EXPECT_EQ(log.value().BaseIndex(), 8u);
  EXPECT_EQ(log.value().SegmentCount(), 0u);
  EXPECT_EQ(log.value().Get(11).value(), Payload(16, 11));

  // The manifest commits the compaction across reopens.
  auto reopened = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(reopened.ok()) << reopened.message();
  EXPECT_EQ(reopened.value().BaseIndex(), 8u);
  EXPECT_EQ(reopened.value().Count(), 12u);
  EXPECT_FALSE(reopened.value().Get(7).ok());
  EXPECT_EQ(reopened.value().Get(8).value(), Payload(16, 8));
}

TEST(SegmentedRecordLogTest, RotationCrashSitesLoseNoRecords) {
  const char* sites[] = {"seglog.rotate.begin", "seglog.rotate.rename",
                         "seglog.rotate.sidecar", "seglog.rotate.newfile"};
  int variant = 0;
  for (const char* site : sites) {
    SCOPED_TRACE(site);
    const std::string path =
        TempPath("rlog_seg_crash_rot" + std::to_string(variant++) + ".bin");
    RemoveLogFamily(path);
    CrashGuard guard;
    {
      auto log = RecordLog::Open(path, SegOptions(4));
      ASSERT_TRUE(log.ok());
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            log.value().Append(Payload(32, static_cast<std::uint8_t>(i))).ok());
      }
      // The 5th append must rotate first; the armed site kills it mid-protocol.
      CrashPoints::Global().Arm(site, 1);
      EXPECT_THROW(log.value().Append(Payload(32, 4)), CrashInjected);
    }
    // Recovery rolls the interrupted rotation forward: nothing sealed is
    // lost, record 4 (never written) is simply absent, and appends resume.
    auto reopened = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(reopened.ok()) << reopened.message();
    EXPECT_EQ(reopened.value().Count(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(reopened.value().Get(i).value(),
                Payload(32, static_cast<std::uint8_t>(i)));
    }
    ASSERT_TRUE(reopened.value().Append(Payload(32, 4)).ok());
    EXPECT_EQ(reopened.value().Count(), 5u);
    EXPECT_EQ(reopened.value().Get(4).value(), Payload(32, 4));
  }
}

TEST(SegmentedRecordLogTest, CompactionCrashBeforeManifestChangesNothing) {
  const std::string path = TempPath("rlog_seg_crash_manifest.bin");
  RemoveLogFamily(path);
  CrashGuard guard;
  {
    auto log = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(log.value().Append(Payload(16, static_cast<std::uint8_t>(i))).ok());
    }
    CrashPoints::Global().Arm("seglog.compact.manifest", 1);
    EXPECT_THROW(log.value().CompactBelow(8), CrashInjected);
  }
  // The tombstone never committed: the full history is still readable.
  auto reopened = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(reopened.ok()) << reopened.message();
  EXPECT_EQ(reopened.value().BaseIndex(), 0u);
  EXPECT_EQ(reopened.value().SegmentCount(), 2u);
  EXPECT_EQ(reopened.value().Get(0).value(), Payload(16, 0));
}

TEST(SegmentedRecordLogTest, CompactionCrashAfterManifestResumesOnReopen) {
  const std::string path = TempPath("rlog_seg_crash_unlink.bin");
  RemoveLogFamily(path);
  CrashGuard guard;
  {
    auto log = RecordLog::Open(path, SegOptions(4));
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(log.value().Append(Payload(16, static_cast<std::uint8_t>(i))).ok());
    }
    CrashPoints::Global().Arm("seglog.compact.unlink", 1);
    EXPECT_THROW(log.value().CompactBelow(8), CrashInjected);
  }
  // The manifest was durable before the crash: reopen finishes the unlink
  // and the log comes up compacted, with the dead segment files gone.
  auto reopened = RecordLog::Open(path, SegOptions(4));
  ASSERT_TRUE(reopened.ok()) << reopened.message();
  EXPECT_EQ(reopened.value().BaseIndex(), 8u);
  EXPECT_EQ(reopened.value().SegmentCount(), 0u);
  EXPECT_FALSE(reopened.value().Get(7).ok());
  EXPECT_EQ(reopened.value().Get(8).value(), Payload(16, 8));
  std::ifstream seg0(path + ".seg.0", std::ios::binary);
  std::ifstream seg4(path + ".seg.4", std::ios::binary);
  EXPECT_FALSE(seg0.good());
  EXPECT_FALSE(seg4.good());
}

TEST(CrashPointsTest, ArmReplacesAndHitCountsTrack) {
  CrashGuard guard;
  auto& cp = CrashPoints::Global();
  cp.Arm("site.a", 3);
  EXPECT_FALSE(cp.FireNow("site.b"));  // counted, not armed
  EXPECT_FALSE(cp.FireNow("site.a"));  // 2 remaining
  EXPECT_EQ(cp.HitCount("site.a"), 1u);
  EXPECT_EQ(cp.HitCount("site.b"), 1u);
  cp.Arm("site.b", 1);  // re-arm resets counters
  EXPECT_EQ(cp.HitCount("site.a"), 0u);
  EXPECT_TRUE(cp.FireNow("site.b"));
  EXPECT_TRUE(cp.Fired());
  EXPECT_FALSE(cp.FireNow("site.b"));  // fired once; disarmed
}

}  // namespace
}  // namespace dcert::common
