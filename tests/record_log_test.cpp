// common::RecordLog: the shared durable record format under the block and
// certificate logs — round trips, torn-tail recovery, truncation, and the
// seeded crash-injection sites.
#include <gtest/gtest.h>

#include <fstream>

#include "common/crash_point.h"
#include "common/record_log.h"

namespace dcert::common {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

Bytes Payload(std::size_t n, std::uint8_t tag) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(tag + i);
  return b;
}

std::uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<std::uint64_t>(in.tellg());
}

class CrashGuard {
 public:
  ~CrashGuard() { CrashPoints::Global().Disarm(); }
};

TEST(RecordLogTest, AppendGetRoundTrip) {
  const std::string path = TempPath("rlog_roundtrip.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.message();
  EXPECT_EQ(log.value().Count(), 0u);
  EXPECT_FALSE(log.value().RecoveredFromTornTail());

  ASSERT_TRUE(log.value().Append(Payload(10, 1)).ok());
  ASSERT_TRUE(log.value().Append(Payload(0, 0)).ok());  // empty payload is legal
  ASSERT_TRUE(log.value().Append(Payload(300, 7)).ok());
  EXPECT_EQ(log.value().Count(), 3u);
  EXPECT_EQ(log.value().Get(0).value(), Payload(10, 1));
  EXPECT_EQ(log.value().Get(1).value(), Bytes{});
  EXPECT_EQ(log.value().Get(2).value(), Payload(300, 7));
  EXPECT_FALSE(log.value().Get(3).ok());
}

TEST(RecordLogTest, ReopenRestoresIndex) {
  const std::string path = TempPath("rlog_reopen.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(20, 3)).ok());
    ASSERT_TRUE(log.value().Append(Payload(40, 9)).ok());
  }
  auto reopened = RecordLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 2u);
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
  EXPECT_EQ(reopened.value().Get(1).value(), Payload(40, 9));
}

TEST(RecordLogTest, TornTailIsTruncatedOnOpenAndStaysGone) {
  const std::string path = TempPath("rlog_torn.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(16, 1)).ok());
    ASSERT_TRUE(log.value().Append(Payload(16, 2)).ok());
  }
  const std::uint64_t intact_size = FileSize(path);
  {
    // A crash mid-append: header + part of the payload.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = "TRCD\x10\x00\x00\x00garbage";
    out.write(torn, sizeof(torn) - 1);
  }
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log.value().RecoveredFromTornTail());
    EXPECT_EQ(log.value().Count(), 2u);
    EXPECT_EQ(log.value().Get(1).value(), Payload(16, 2));
    // The tail was PHYSICALLY truncated, not just skipped: a second reopen
    // must see a clean file.
    EXPECT_EQ(FileSize(path), intact_size);
    ASSERT_TRUE(log.value().Append(Payload(16, 3)).ok());
  }
  auto again = RecordLog::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().RecoveredFromTornTail());
  EXPECT_EQ(again.value().Count(), 3u);
}

TEST(RecordLogTest, CorruptedPayloadTailIsDropped) {
  const std::string path = TempPath("rlog_corrupt.bin");
  std::remove(path.c_str());
  {
    auto log = RecordLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value().Append(Payload(32, 5)).ok());
    ASSERT_TRUE(log.value().Append(Payload(32, 6)).ok());
  }
  {
    // Flip one byte in the LAST record's payload (CRC now fails).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().RecoveredFromTornTail());
  EXPECT_EQ(log.value().Count(), 1u);
  EXPECT_EQ(log.value().Get(0).value(), Payload(32, 5));
}

TEST(RecordLogTest, TruncateToDropsTailRecords) {
  const std::string path = TempPath("rlog_trunc.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.value().Append(Payload(8, static_cast<std::uint8_t>(i))).ok());
  }
  EXPECT_FALSE(log.value().TruncateTo(6).ok());  // beyond count
  ASSERT_TRUE(log.value().TruncateTo(5).ok());   // no-op
  ASSERT_TRUE(log.value().TruncateTo(2).ok());
  EXPECT_EQ(log.value().Count(), 2u);
  EXPECT_FALSE(log.value().Get(2).ok());
  // Appends continue cleanly after truncation, and survive reopen.
  ASSERT_TRUE(log.value().Append(Payload(8, 9)).ok());
  auto reopened = RecordLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 3u);
  EXPECT_EQ(reopened.value().Get(2).value(), Payload(8, 9));
}

TEST(RecordLogTest, FsyncOnAppendTogglesAndFsyncWorks) {
  const std::string path = TempPath("rlog_fsync.bin");
  std::remove(path.c_str());
  RecordLog::Options options;
  options.name = "fslog";
  options.fsync_on_append = true;
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().FsyncOnAppend());
  ASSERT_TRUE(log.value().Append(Payload(4, 1)).ok());
  log.value().SetFsyncOnAppend(false);
  ASSERT_TRUE(log.value().Append(Payload(4, 2)).ok());
  ASSERT_TRUE(log.value().Fsync().ok());
  EXPECT_EQ(log.value().Count(), 2u);
}

TEST(RecordLogTest, ArmedCrashSiteFiresOnceWithCountdown) {
  const std::string path = TempPath("rlog_crash_after.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());

  // Fire on the SECOND append, after the bytes hit the file but before the
  // record is indexed.
  CrashPoints::Global().Arm("tlog.append.after", 2);
  ASSERT_TRUE(log.value().Append(Payload(8, 1)).ok());
  EXPECT_THROW(log.value().Append(Payload(8, 2)), CrashInjected);
  EXPECT_TRUE(CrashPoints::Global().Fired());
  EXPECT_EQ(CrashPoints::Global().HitCount("tlog.append.after"), 2u);
  // The site self-disarms when it fires: recovery-time appends run through.
  EXPECT_FALSE(CrashPoints::Global().Armed());

  // The in-memory index never saw record 2, but its bytes are on disk — a
  // reopen (recovery) finds the complete record and keeps it.
  auto reopened = RecordLog::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 2u);
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
}

TEST(RecordLogTest, TornCrashSiteLeavesTornRecordForRecovery) {
  const std::string path = TempPath("rlog_crash_torn.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value().Append(Payload(64, 1)).ok());

  CrashPoints::Global().Arm("tlog.append.torn", 1);
  EXPECT_THROW(log.value().Append(Payload(64, 2)), CrashInjected);
  // Header plus half the payload made it to disk: exactly a power loss
  // mid-write. Recovery truncates it.
  auto reopened = RecordLog::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().RecoveredFromTornTail());
  EXPECT_EQ(reopened.value().Count(), 1u);
  EXPECT_EQ(reopened.value().Get(0).value(), Payload(64, 1));
}

TEST(RecordLogTest, BeforeCrashSiteLeavesFileUntouched) {
  const std::string path = TempPath("rlog_crash_before.bin");
  std::remove(path.c_str());
  CrashGuard guard;
  RecordLog::Options options;
  options.name = "tlog";
  auto log = RecordLog::Open(path, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value().Append(Payload(8, 1)).ok());
  const std::uint64_t size_before = FileSize(path);

  CrashPoints::Global().Arm("tlog.append.before", 1);
  EXPECT_THROW(log.value().Append(Payload(8, 2)), CrashInjected);
  EXPECT_EQ(FileSize(path), size_before);
}

TEST(RecordLogTest, DisarmedSitesAreFree) {
  // No Arm(): every Hit is an early return; behavior identical to no sites.
  const std::string path = TempPath("rlog_disarmed.bin");
  std::remove(path.c_str());
  auto log = RecordLog::Open(path);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(log.value().Append(Payload(8, static_cast<std::uint8_t>(i))).ok());
  }
  EXPECT_EQ(log.value().Count(), 100u);
  EXPECT_FALSE(CrashPoints::Global().Fired());
}

TEST(CrashPointsTest, ArmReplacesAndHitCountsTrack) {
  CrashGuard guard;
  auto& cp = CrashPoints::Global();
  cp.Arm("site.a", 3);
  EXPECT_FALSE(cp.FireNow("site.b"));  // counted, not armed
  EXPECT_FALSE(cp.FireNow("site.a"));  // 2 remaining
  EXPECT_EQ(cp.HitCount("site.a"), 1u);
  EXPECT_EQ(cp.HitCount("site.b"), 1u);
  cp.Arm("site.b", 1);  // re-arm resets counters
  EXPECT_EQ(cp.HitCount("site.a"), 0u);
  EXPECT_TRUE(cp.FireNow("site.b"));
  EXPECT_TRUE(cp.Fired());
  EXPECT_FALSE(cp.FireNow("site.b"));  // fired once; disarmed
}

}  // namespace
}  // namespace dcert::common
