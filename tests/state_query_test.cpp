// Verifiable current-state queries against a certified header.
#include "query/state_query.h"

#include <gtest/gtest.h>

#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

namespace dcert::query {
namespace {

using workloads::AccountPool;
using workloads::ContractId;
using workloads::Workload;
using workloads::WorkloadGenerator;

struct StateRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<core::CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 404};
  core::SuperlightClient client{core::ExpectedEnclaveMeasurement()};

  StateRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    ci = std::make_unique<core::CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
  }

  void RunBlock(std::vector<chain::Transaction> txs) {
    auto block = miner->MineBlock(std::move(txs), 100 + miner_node->Height());
    ASSERT_TRUE(block.ok()) << block.message();
    ASSERT_TRUE(miner_node->SubmitBlock(block.value()).ok());
    auto cert = ci->ProcessBlock(block.value());
    ASSERT_TRUE(cert.ok()) << cert.message();
    ASSERT_TRUE(client.ValidateAndAccept(block.value().header, cert.value()).ok());
  }
};

TEST(StateQueryTest, BalanceQueryAgainstCertifiedHeader) {
  StateRig rig;
  std::uint64_t sb = ContractId(Workload::kSmallBank, 0);
  // Deposit 120 to account 9's checking, then pay 50 to account 2.
  rig.RunBlock({rig.pool.MakeTx(0, sb, {1, 9, 120})});
  rig.RunBlock({rig.pool.MakeTx(0, sb, {3, 9, 2, 50})});

  // The untrusted full node proves checking(9) = 70 against the SMT.
  chain::StateKey key = chain::SlotKey(sb, 9 * 2 + 1);
  StateQueryProof proof = ProveState(rig.ci->Node().State(), key);

  // The client verifies against its certified latest header.
  Hash256 certified_root = rig.client.LatestHeader().state_root;
  auto value = VerifyState(certified_root, key, proof);
  ASSERT_TRUE(value.ok()) << value.message();
  EXPECT_EQ(value.value(), 70u);
}

TEST(StateQueryTest, UnsetKeyProvablyZero) {
  StateRig rig;
  rig.RunBlock({});
  chain::StateKey key = chain::SlotKey(999, 1);
  StateQueryProof proof = ProveState(rig.ci->Node().State(), key);
  auto value = VerifyState(rig.client.LatestHeader().state_root, key, proof);
  ASSERT_TRUE(value.ok()) << value.message();
  EXPECT_EQ(value.value(), 0u);
}

TEST(StateQueryTest, LyingNodeRejected) {
  StateRig rig;
  std::uint64_t kv = ContractId(Workload::kKvStore, 0);
  rig.RunBlock({rig.pool.MakeTx(0, kv, {0, 7, 1234})});

  chain::StateKey key = chain::SlotKey(kv, 7);
  Hash256 root = rig.client.LatestHeader().state_root;

  // Wrong value with a genuine proof: rejected.
  StateQueryProof lying = ProveState(rig.ci->Node().State(), key);
  lying.value = 9999;
  EXPECT_FALSE(VerifyState(root, key, lying).ok());

  // Claiming an existing key is unset: rejected.
  StateQueryProof absent = ProveState(rig.ci->Node().State(), key);
  absent.value = 0;
  EXPECT_FALSE(VerifyState(root, key, absent).ok());

  // Stale proof against a newer certified root: rejected.
  StateQueryProof stale = ProveState(rig.ci->Node().State(), key);
  rig.RunBlock({rig.pool.MakeTx(0, kv, {0, 7, 5678})});
  EXPECT_FALSE(
      VerifyState(rig.client.LatestHeader().state_root, key, stale).ok());
  // And the fresh proof for the new value verifies.
  StateQueryProof fresh = ProveState(rig.ci->Node().State(), key);
  auto value = VerifyState(rig.client.LatestHeader().state_root, key, fresh);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 5678u);
}

TEST(StateQueryTest, BatchedQueryRoundTripAndNegatives) {
  StateRig rig;
  std::uint64_t kv = ContractId(Workload::kKvStore, 0);
  rig.RunBlock({rig.pool.MakeTx(0, kv, {0, 1, 11}), rig.pool.MakeTx(1, kv, {0, 2, 22})});

  std::vector<chain::StateKey> keys{chain::SlotKey(kv, 1), chain::SlotKey(kv, 2),
                                    chain::SlotKey(kv, 3)};
  MultiStateQueryProof proof = ProveStates(rig.ci->Node().State(), keys);
  Hash256 root = rig.client.LatestHeader().state_root;
  EXPECT_TRUE(VerifyStates(root, keys, proof).ok());
  EXPECT_EQ(proof.values.at(chain::SlotKey(kv, 1)), 11u);
  EXPECT_EQ(proof.values.at(chain::SlotKey(kv, 3)), 0u);

  // Tampered value in the batch: rejected.
  MultiStateQueryProof bad = ProveStates(rig.ci->Node().State(), keys);
  bad.values.begin()->second += 1;
  EXPECT_FALSE(VerifyStates(root, keys, bad).ok());

  // Missing key: rejected.
  MultiStateQueryProof missing = ProveStates(rig.ci->Node().State(), keys);
  missing.values.erase(missing.values.begin());
  EXPECT_FALSE(VerifyStates(root, keys, missing).ok());

  // Extra unrequested key: rejected.
  MultiStateQueryProof extra = ProveStates(rig.ci->Node().State(), keys);
  extra.values[chain::SlotKey(kv, 99)] = 5;
  EXPECT_FALSE(VerifyStates(root, keys, extra).ok());
}

TEST(StateQueryTest, ProofSerializationRoundTrip) {
  StateRig rig;
  std::uint64_t kv = ContractId(Workload::kKvStore, 0);
  rig.RunBlock({rig.pool.MakeTx(0, kv, {0, 4, 44})});
  chain::StateKey key = chain::SlotKey(kv, 4);
  StateQueryProof proof = ProveState(rig.ci->Node().State(), key);
  auto decoded = StateQueryProof::Deserialize(proof.Serialize());
  ASSERT_TRUE(decoded.ok());
  auto value = VerifyState(rig.client.LatestHeader().state_root, key,
                           decoded.value());
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 44u);

  std::vector<chain::StateKey> keys{key};
  MultiStateQueryProof multi = ProveStates(rig.ci->Node().State(), keys);
  auto multi_decoded = MultiStateQueryProof::Deserialize(multi.Serialize());
  ASSERT_TRUE(multi_decoded.ok());
  EXPECT_TRUE(VerifyStates(rig.client.LatestHeader().state_root, keys,
                           multi_decoded.value())
                  .ok());
}

}  // namespace
}  // namespace dcert::query
