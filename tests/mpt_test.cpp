// Merkle Patricia Trie: presence/absence proofs and stateless puts.
#include "mht/mpt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace dcert::mht {
namespace {

Hash256 Key(const std::string& s) { return crypto::Sha256::Digest(StrBytes(s)); }
Hash256 Val(const std::string& s) {
  return crypto::Sha256::Digest(StrBytes("val:" + s));
}

TEST(MptTest, EmptyTrie) {
  MptTrie trie;
  EXPECT_EQ(trie.Root(), MptTrie::EmptyRoot());
  EXPECT_FALSE(trie.Get(Key("a")).has_value());

  MptProof proof = trie.Prove(Key("a"));
  auto verified = MptTrie::VerifyGet(trie.Root(), Key("a"), proof);
  ASSERT_TRUE(verified.ok()) << verified.message();
  EXPECT_FALSE(verified.value().has_value());
}

TEST(MptTest, PutGetRoundTrip) {
  MptTrie trie;
  trie.Put(Key("alice"), Val("1"));
  trie.Put(Key("bob"), Val("2"));
  EXPECT_EQ(trie.Get(Key("alice")), Val("1"));
  EXPECT_EQ(trie.Get(Key("bob")), Val("2"));
  EXPECT_FALSE(trie.Get(Key("carol")).has_value());
  EXPECT_EQ(trie.Size(), 2u);
}

TEST(MptTest, OverwriteValue) {
  MptTrie trie;
  trie.Put(Key("k"), Val("old"));
  Hash256 r1 = trie.Root();
  trie.Put(Key("k"), Val("new"));
  EXPECT_NE(trie.Root(), r1);
  EXPECT_EQ(trie.Get(Key("k")), Val("new"));
  EXPECT_EQ(trie.Size(), 1u);
}

TEST(MptTest, ZeroValueRejected) {
  MptTrie trie;
  EXPECT_THROW(trie.Put(Key("k"), Hash256()), std::invalid_argument);
}

TEST(MptTest, RootInsertionOrderIndependent) {
  std::vector<std::string> names{"a", "b", "c", "dd", "ee", "ff", "g1", "g2"};
  MptTrie forward, backward;
  for (const auto& n : names) forward.Put(Key(n), Val(n));
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    backward.Put(Key(*it), Val(*it));
  }
  EXPECT_EQ(forward.Root(), backward.Root());
}

TEST(MptTest, PresenceProof) {
  MptTrie trie;
  for (int i = 0; i < 50; ++i) trie.Put(Key("acct" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("acct7"));
  auto verified = MptTrie::VerifyGet(trie.Root(), Key("acct7"), proof);
  ASSERT_TRUE(verified.ok()) << verified.message();
  ASSERT_TRUE(verified.value().has_value());
  EXPECT_EQ(*verified.value(), Val("v7"));
}

TEST(MptTest, AbsenceProof) {
  MptTrie trie;
  for (int i = 0; i < 50; ++i) trie.Put(Key("acct" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("nobody"));
  auto verified = MptTrie::VerifyGet(trie.Root(), Key("nobody"), proof);
  ASSERT_TRUE(verified.ok()) << verified.message();
  EXPECT_FALSE(verified.value().has_value());
}

TEST(MptTest, ProofWrongKeyRejected) {
  MptTrie trie;
  for (int i = 0; i < 20; ++i) trie.Put(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("k3"));
  // Verifying against a different key either fails or proves absence, never
  // yields k3's value bound to the wrong key.
  auto other = MptTrie::VerifyGet(trie.Root(), Key("k4"), proof);
  if (other.ok()) {
    EXPECT_NE(other.value(), std::optional<Hash256>(Val("v3")));
  }
}

TEST(MptTest, TamperedProofRejected) {
  MptTrie trie;
  for (int i = 0; i < 20; ++i) trie.Put(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("k3"));
  ASSERT_TRUE(proof.has_leaf);
  proof.leaf_value_hash[0] ^= 1;
  EXPECT_FALSE(MptTrie::VerifyGet(trie.Root(), Key("k3"), proof).ok());
}

TEST(MptTest, TamperedSiblingRejected) {
  MptTrie trie;
  for (int i = 0; i < 20; ++i) trie.Put(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("k3"));
  ASSERT_FALSE(proof.steps.empty());
  bool mutated = false;
  for (auto& step : proof.steps) {
    if (!step.children.empty()) {
      step.children[0].second[0] ^= 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(MptTrie::VerifyGet(trie.Root(), Key("k3"), proof).ok());
}

TEST(MptTest, ApplyPutMatchesInTreePut) {
  MptTrie trie;
  Hash256 root = MptTrie::EmptyRoot();
  Rng rng(99);
  for (int i = 0; i < 120; ++i) {
    // Mix fresh keys and overwrites.
    std::string name = "acct" + std::to_string(rng.NextBelow(60));
    Hash256 key = Key(name);
    Hash256 vh = Val(name + "#" + std::to_string(i));
    MptProof proof = trie.Prove(key);
    auto predicted = MptTrie::ApplyPut(root, key, proof, vh);
    ASSERT_TRUE(predicted.ok()) << "i=" << i << ": " << predicted.message();
    trie.Put(key, vh);
    ASSERT_EQ(predicted.value(), trie.Root()) << "i=" << i;
    root = predicted.value();
  }
}

TEST(MptTest, ApplyPutRejectsWrongOldRoot) {
  MptTrie trie;
  trie.Put(Key("a"), Val("a"));
  MptProof proof = trie.Prove(Key("b"));
  Hash256 wrong = trie.Root();
  wrong[1] ^= 1;
  EXPECT_FALSE(MptTrie::ApplyPut(wrong, Key("b"), proof, Val("b")).ok());
}

TEST(MptTest, ApplyPutRejectsZeroValue) {
  MptTrie trie;
  trie.Put(Key("a"), Val("a"));
  MptProof proof = trie.Prove(Key("b"));
  EXPECT_FALSE(MptTrie::ApplyPut(trie.Root(), Key("b"), proof, Hash256()).ok());
}

TEST(MptTest, ProofSerializationRoundTrip) {
  MptTrie trie;
  for (int i = 0; i < 30; ++i) trie.Put(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  MptProof proof = trie.Prove(Key("k11"));
  Bytes wire = proof.Serialize();
  auto decoded = MptProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok());
  auto verified = MptTrie::VerifyGet(trie.Root(), Key("k11"), decoded.value());
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified.value(), std::optional<Hash256>(Val("v11")));

  Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(MptProof::Deserialize(truncated).ok());
}

// Property sweep: tries of growing size — every key provable, absent keys
// provably absent, all proofs bound to the root.
class MptSweep : public ::testing::TestWithParam<int> {};

TEST_P(MptSweep, AllKeysProvable) {
  const int n = GetParam();
  MptTrie trie;
  for (int i = 0; i < n; ++i) {
    trie.Put(Key("key" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    Hash256 k = Key("key" + std::to_string(i));
    auto verified = MptTrie::VerifyGet(trie.Root(), k, trie.Prove(k));
    ASSERT_TRUE(verified.ok()) << "n=" << n << " i=" << i << ": " << verified.message();
    EXPECT_EQ(verified.value(), std::optional<Hash256>(Val("v" + std::to_string(i))));
  }
  for (int i = 0; i < 10; ++i) {
    Hash256 k = Key("missing" + std::to_string(i));
    auto verified = MptTrie::VerifyGet(trie.Root(), k, trie.Prove(k));
    ASSERT_TRUE(verified.ok());
    EXPECT_FALSE(verified.value().has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MptSweep, ::testing::Values(1, 2, 3, 5, 16, 17, 100, 500));

}  // namespace
}  // namespace dcert::mht
