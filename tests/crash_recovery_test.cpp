// Crash-recoverable Certificate Issuer: seeded crash soak across every named
// kill site, reconcile paths (cert log ahead / block log ahead / both logs
// torn), issuer-level sealed-key negatives, and the announced-implies-durable
// invariant. The central claim under test: after ANY injected crash and
// recovery, the durable cert sequence is byte-identical to a crash-free run
// (deterministic signing + the commit order make recovery exact, not just
// plausible).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpointed_issuer.h"
#include "common/crash_point.h"
#include "common/rng.h"
#include "dcert/durable_issuer.h"
#include "workloads/workloads.h"

namespace dcert::core {
namespace {

using common::CrashInjected;
using common::CrashPoints;

struct CrashGuard {
  ~CrashGuard() { CrashPoints::Global().Disarm(); }
};

/// The shared reference chain every test certifies: mined once.
struct ChainRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::vector<chain::Block> blocks;  // heights 1..blocks.size()
};

const ChainRig& ReferenceChain() {
  static const ChainRig* rig = [] {
    auto* r = new ChainRig();
    r->config.difficulty_bits = 2;
    r->registry = workloads::MakeBlockbenchRegistry(1);
    chain::FullNode miner_node(r->config, r->registry);
    chain::Miner miner(miner_node);
    workloads::AccountPool pool(4, 66);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    workloads::WorkloadGenerator gen(params, pool);
    for (int i = 0; i < 10; ++i) {
      auto block = miner.MineBlock(gen.NextBlockTxs(4), 100 + miner_node.Height());
      if (!block.ok() || !miner_node.SubmitBlock(block.value())) {
        throw std::runtime_error("reference chain mining failed");
      }
      r->blocks.push_back(block.value());
    }
    return r;
  }();
  return *rig;
}

struct LogPaths {
  std::string blocks;
  std::string certs;
  std::string key;
};

LogPaths FreshPaths(const std::string& tag) {
  LogPaths p;
  p.blocks = ::testing::TempDir() + tag + "_blocks.log";
  p.certs = ::testing::TempDir() + tag + "_certs.log";
  p.key = ::testing::TempDir() + tag + "_key.sealed";
  std::remove(p.blocks.c_str());
  std::remove(p.certs.c_str());
  std::remove(p.key.c_str());
  return p;
}

DurableIssuerOptions MakeOptions(const LogPaths& p, AnnounceFn announce = {},
                                 bool fsync = false) {
  DurableIssuerOptions options;
  options.block_log_path = p.blocks;
  options.cert_log_path = p.certs;
  options.sealed_key_path = p.key;
  options.fsync_on_append = fsync;
  options.announce = std::move(announce);
  return options;
}

/// Certificate bytes from a crash-free durable run over the reference chain.
const std::vector<Bytes>& ReferenceCerts() {
  static const std::vector<Bytes>* certs = [] {
    const ChainRig& rig = ReferenceChain();
    LogPaths paths = FreshPaths("reference");
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    if (!ci.ok()) throw std::runtime_error(ci.message());
    for (const chain::Block& blk : rig.blocks) {
      if (Status st = ci.value().CertifyBlock(blk); !st) {
        throw std::runtime_error(st.message());
      }
    }
    auto* out = new std::vector<Bytes>();
    for (std::uint64_t i = 0; i < ci.value().Certs().Count(); ++i) {
      out->push_back(ci.value().Certs().Get(i).value().Serialize());
    }
    return out;
  }();
  return *certs;
}

/// Asserts the durable logs hold EXACTLY the reference chain and certs,
/// byte for byte.
void ExpectLogsMatchReference(const DurableCertificateIssuer& ci) {
  const ChainRig& rig = ReferenceChain();
  const std::vector<Bytes>& ref = ReferenceCerts();
  ASSERT_EQ(ci.Blocks().Count(), rig.blocks.size() + 1);
  for (std::size_t h = 1; h <= rig.blocks.size(); ++h) {
    EXPECT_EQ(ci.Blocks().Get(h).value().Serialize(),
              rig.blocks[h - 1].Serialize())
        << "block " << h;
  }
  ASSERT_EQ(ci.Certs().Count(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ci.Certs().Get(i).value().Serialize(), ref[i]) << "cert " << i;
  }
}

void FlipLastByte(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << path;
  f.seekp(-1, std::ios::end);
  f.put('\xA5');
}

TEST(CrashRecoveryTest, CleanRestartResumesByteIdentical) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("clean_restart");
  Bytes pk_before;
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok()) << ci.message();
    EXPECT_FALSE(ci.value().Recovery().resumed);
    for (std::size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[i]).ok());
    }
    pk_before = ci.value().Issuer().EnclaveKey().Serialize();
  }
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  ASSERT_TRUE(ci.ok()) << ci.message();
  const RecoveryReport& rec = ci.value().Recovery();
  EXPECT_TRUE(rec.resumed);
  EXPECT_EQ(rec.blocks_replayed, 5u);
  EXPECT_EQ(rec.blocks_recertified, 0u);
  EXPECT_EQ(rec.certs_truncated, 0u);
  // Same sealed key, same pk_enc: clients keep their cached attestation.
  EXPECT_EQ(ci.value().Issuer().EnclaveKey().Serialize(), pk_before);
  for (std::size_t i = 5; i < rig.blocks.size(); ++i) {
    ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[i]).ok());
  }
  ExpectLogsMatchReference(ci.value());
}

TEST(CrashRecoveryTest, CertLogAheadIsTruncatedAndReissuedIdentically) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("cert_ahead");
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok());
    for (const chain::Block& blk : rig.blocks) {
      ASSERT_TRUE(ci.value().CertifyBlock(blk).ok());
    }
  }
  // External corruption of the block log tail (the one case the in-process
  // commit order cannot produce): the last block record dies, its already
  // durable certificate dangles.
  FlipLastByte(paths.blocks);
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  ASSERT_TRUE(ci.ok()) << ci.message();
  const RecoveryReport& rec = ci.value().Recovery();
  EXPECT_TRUE(rec.block_log_torn);
  EXPECT_EQ(rec.certs_truncated, 1u);
  EXPECT_EQ(ci.value().Issuer().Node().Height(), rig.blocks.size() - 1);
  // Re-certifying the block re-issues the SAME certificate bytes
  // (deterministic signing): a client that saw the pre-crash announcement
  // observes no equivocation.
  ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks.back()).ok());
  ExpectLogsMatchReference(ci.value());
}

TEST(CrashRecoveryTest, BlockLogAheadGapIsRecertifiedAndAnnounced) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("block_ahead");
  CrashGuard guard;
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok());
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[i]).ok());
    }
    // Crash inside certificate construction for block 7: its block record is
    // durable, its certificate never happens.
    CrashPoints::Global().Arm("issuer.process.ecall", 1);
    EXPECT_THROW(ci.value().CertifyBlock(rig.blocks[6]), CrashInjected);
  }
  std::vector<std::uint64_t> announced;
  auto sink = [&](const chain::Block& blk, const BlockCertificate&) {
    announced.push_back(blk.header.height);
    return Status::Ok();
  };
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths, sink));
  ASSERT_TRUE(ci.ok()) << ci.message();
  const RecoveryReport& rec = ci.value().Recovery();
  EXPECT_EQ(rec.blocks_replayed, 6u);
  EXPECT_EQ(rec.blocks_recertified, 1u);
  EXPECT_EQ(rec.certs_truncated, 0u);
  // The gap block was never announced before the crash (announce follows the
  // cert append), so recovery announces the re-issued certificate.
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], 7u);
  for (std::size_t i = 7; i < rig.blocks.size(); ++i) {
    ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[i]).ok());
  }
  ExpectLogsMatchReference(ci.value());
}

TEST(CrashRecoveryTest, BothLogsTornRecoverTogether) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("both_torn");
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok());
    for (const chain::Block& blk : rig.blocks) {
      ASSERT_TRUE(ci.value().CertifyBlock(blk).ok());
    }
  }
  FlipLastByte(paths.blocks);
  FlipLastByte(paths.certs);
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  ASSERT_TRUE(ci.ok()) << ci.message();
  const RecoveryReport& rec = ci.value().Recovery();
  EXPECT_TRUE(rec.block_log_torn);
  EXPECT_TRUE(rec.cert_log_torn);
  // Both logs lost their last record: consistent again at N-1.
  EXPECT_EQ(rec.certs_truncated, 0u);
  EXPECT_EQ(rec.blocks_replayed, rig.blocks.size() - 1);
  ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks.back()).ok());
  ExpectLogsMatchReference(ci.value());
}

TEST(CrashRecoveryTest, PipelinedSpanCrashRecoversByteIdentical) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("pipelined_crash");
  CrashGuard guard;
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok());
    // Crash on the 4th Ecall of the span: blocks 1-3 fully durable, the
    // prepare thread likely committed further ahead in memory — all of
    // which dies with the process, leaving only the logs.
    CrashPoints::Global().Arm("issuer.pipeline.ecall", 4);
    EXPECT_THROW(ci.value().CertifyBlocksPipelined(rig.blocks), CrashInjected);
  }
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  ASSERT_TRUE(ci.ok()) << ci.message();
  EXPECT_EQ(ci.value().Issuer().Node().Height(), 3u);
  std::vector<chain::Block> rest(rig.blocks.begin() + 3, rig.blocks.end());
  ASSERT_TRUE(ci.value().CertifyBlocksPipelined(rest).ok());
  ExpectLogsMatchReference(ci.value());
}

TEST(CrashRecoveryTest, AnnounceSinkErrorAbortsButLogsStayConsistent) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("announce_error");
  int calls = 0;
  auto sink = [&](const chain::Block&, const BlockCertificate&) {
    return ++calls >= 3 ? Status::Error("subscriber down") : Status::Ok();
  };
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths, sink));
    ASSERT_TRUE(ci.ok());
    ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[0]).ok());
    ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[1]).ok());
    Status st = ci.value().CertifyBlock(rig.blocks[2]);
    EXPECT_FALSE(st.ok());
    // The certificate went durable BEFORE the failed announce.
    EXPECT_EQ(ci.value().Certs().Count(), 3u);
  }
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  ASSERT_TRUE(ci.ok()) << ci.message();
  EXPECT_EQ(ci.value().Recovery().blocks_replayed, 3u);
}

TEST(CrashRecoveryTest, MissingSealedKeyWithNonEmptyStoresFails) {
  const ChainRig& rig = ReferenceChain();
  LogPaths paths = FreshPaths("missing_key");
  {
    auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                             MakeOptions(paths));
    ASSERT_TRUE(ci.ok());
    ASSERT_TRUE(ci.value().CertifyBlock(rig.blocks[0]).ok());
  }
  std::remove(paths.key.c_str());
  auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                           MakeOptions(paths));
  EXPECT_FALSE(ci.ok());
  EXPECT_NE(ci.message().find("sealed key"), std::string::npos);
}

// Issuer-level sealed-key negatives: every tampering is a Status error, never
// a crash, and never a usable issuer under a wrong key.
TEST(SealedIssuerTest, RestoreRejectsTamperedTruncatedAndForeignBlobs) {
  const ChainRig& rig = ReferenceChain();
  CertificateIssuer original(rig.config, rig.registry, {}, "sealed-neg-key");
  const Bytes sealed = original.SealSigningKey();

  // Bit flip anywhere in the blob: MAC check fails.
  Bytes flipped = sealed;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_FALSE(CertificateIssuer::Restore(rig.config, rig.registry, flipped).ok());

  // Truncation: decode/MAC fails, no crash.
  Bytes truncated(sealed.begin(), sealed.begin() + sealed.size() / 2);
  EXPECT_FALSE(
      CertificateIssuer::Restore(rig.config, rig.registry, truncated).ok());
  EXPECT_FALSE(CertificateIssuer::Restore(rig.config, rig.registry, Bytes{}).ok());

  // Sealed under a DIFFERENT enclave identity (wrong measurement): the
  // sealing key differs, unsealing fails.
  sgxsim::Enclave other("not-the-dcert-enclave", "9.9.9");
  const Bytes foreign = other.Seal(sealed);
  EXPECT_FALSE(
      CertificateIssuer::Restore(rig.config, rig.registry, foreign).ok());
}

TEST(SealedIssuerTest, RestoredIssuerProducesByteIdenticalCerts) {
  const ChainRig& rig = ReferenceChain();
  CertificateIssuer original(rig.config, rig.registry, {}, "sealed-twin-key");
  auto restored = CertificateIssuer::Restore(rig.config, rig.registry,
                                             original.SealSigningKey());
  ASSERT_TRUE(restored.ok()) << restored.message();
  EXPECT_EQ(restored.value().EnclaveKey().Serialize(),
            original.EnclaveKey().Serialize());
  for (std::size_t i = 0; i < 4; ++i) {
    auto a = original.ProcessBlock(rig.blocks[i]);
    auto b = restored.value().ProcessBlock(rig.blocks[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().Serialize(), b.value().Serialize()) << "block " << i;
  }
}

// The soak: many seeded cycles, each arming a random kill site with a random
// hit countdown, crashing a durable issuer mid-chain (serial or pipelined,
// fsync on or off), recovering, finishing the chain, and asserting the final
// logs are byte-identical to the crash-free reference — with every announced
// certificate present verbatim in the durable log (announced => durable).
TEST(CrashSoakTest, SeededCrashRecoverCyclesAreExact) {
  const ChainRig& rig = ReferenceChain();
  const std::vector<Bytes>& ref_certs = ReferenceCerts();
  CrashGuard guard;

  std::uint64_t cycles = 200;
  if (const char* env = std::getenv("DCERT_CRASH_SOAK_CYCLES")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) cycles = v;
  }
  const std::vector<std::string> sites = {
      "blocklog.append.before",
      "blocklog.append.torn",
      "blocklog.append.after",
      "certlog.append.before",
      "certlog.append.torn",
      "certlog.append.after",
      "issuer.process.ecall",
      "issuer.pipeline.ecall",
      "issuer.durable.begin",
      "issuer.durable.after_block_append",
      "issuer.durable.before_announce",
      "issuer.durable.after_announce",
  };

  Rng rng(0xDCE47C4A54ull);
  std::map<std::string, std::uint64_t> fired_at;
  std::uint64_t crashed_cycles = 0;

  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    LogPaths paths = FreshPaths("soak");
    const std::string& site = sites[rng.NextBelow(sites.size())];
    const std::uint64_t countdown = 1 + rng.NextBelow(rig.blocks.size());
    const bool pipelined = rng.NextBelow(2) == 1;
    const bool fsync = rng.NextBelow(2) == 1;
    SCOPED_TRACE(site + " countdown=" + std::to_string(countdown) +
                 (pipelined ? " pipelined" : " serial") +
                 (fsync ? " fsync" : ""));

    // (height, cert bytes) of every announcement that reached a client.
    std::vector<std::pair<std::uint64_t, Bytes>> announced;
    auto sink = [&](const chain::Block& blk, const BlockCertificate& cert) {
      announced.emplace_back(blk.header.height, cert.Serialize());
      return Status::Ok();
    };

    // Phase 1: drive until the armed site kills the issuer (or the chain
    // completes because the site was never reached often enough).
    bool crashed = false;
    {
      auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                               MakeOptions(paths, sink, fsync));
      ASSERT_TRUE(ci.ok()) << ci.message();
      CrashPoints::Global().Arm(site, countdown);
      try {
        if (pipelined) {
          Status st = ci.value().CertifyBlocksPipelined(rig.blocks);
          ASSERT_TRUE(st.ok()) << st.message();
        } else {
          for (const chain::Block& blk : rig.blocks) {
            Status st = ci.value().CertifyBlock(blk);
            ASSERT_TRUE(st.ok()) << st.message();
          }
        }
      } catch (const CrashInjected& e) {
        crashed = true;
        ++fired_at[e.site];
      }
      CrashPoints::Global().Disarm();
    }
    if (crashed) ++crashed_cycles;

    // Phase 2: recover and finish the chain.
    {
      auto ci = DurableCertificateIssuer::Open(rig.config, rig.registry,
                                               MakeOptions(paths, sink, fsync));
      ASSERT_TRUE(ci.ok()) << ci.message();
      for (std::uint64_t h = ci.value().Issuer().Node().Height();
           h < rig.blocks.size(); ++h) {
        Status st = ci.value().CertifyBlock(rig.blocks[h]);
        ASSERT_TRUE(st.ok()) << st.message();
      }

      // Exactness: logs byte-identical to the crash-free reference.
      ASSERT_EQ(ci.value().Blocks().Count(), rig.blocks.size() + 1);
      ASSERT_EQ(ci.value().Certs().Count(), ref_certs.size());
      for (std::size_t i = 0; i < ref_certs.size(); ++i) {
        ASSERT_EQ(ci.value().Certs().Get(i).value().Serialize(), ref_certs[i])
            << "cert " << i;
      }

      // Announced => durable: every certificate a client ever saw is in the
      // final log verbatim, each height announced at most once (a client can
      // never observe equivocation or an unrecoverable cert).
      std::set<std::uint64_t> seen;
      for (const auto& [height, bytes] : announced) {
        EXPECT_TRUE(seen.insert(height).second)
            << "height " << height << " announced twice";
        ASSERT_GE(height, 1u);
        ASSERT_LE(height, ref_certs.size());
        EXPECT_EQ(bytes, ref_certs[height - 1]) << "announced cert " << height;
      }
    }
  }

  // The seeded schedule must actually exercise the machinery: most cycles
  // crash, and (at full cycle count) every site fires at least once.
  EXPECT_GE(crashed_cycles, cycles / 2) << "soak barely crashed";
  if (cycles >= 200) {
    for (const std::string& site : sites) {
      EXPECT_GE(fired_at[site], 1u) << site << " never fired";
    }
  }
}

// The checkpointed soak (the segmented-log + checkpoint sequel to the soak
// above): seeded cycles over a CheckpointedIssuer with small segments and a
// tight checkpoint cadence, arming kill sites inside segment rotation,
// compaction's manifest/unlink protocol, and checkpoint seal/prune. After
// recovery the RETAINED durable state must be byte-identical to the
// crash-free reference — compaction may shorten what is readable, but never
// changes a surviving byte — and recovery must come up through a checkpoint
// whenever history was compacted.
TEST(CrashSoakTest, CheckpointedSeededCrashRecoverCyclesAreExact) {
  const ChainRig& rig = ReferenceChain();
  const std::vector<Bytes>& ref_certs = ReferenceCerts();
  CrashGuard guard;

  std::uint64_t cycles = 150;
  if (const char* env = std::getenv("DCERT_CRASH_SOAK_CYCLES")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) cycles = v;
  }
  // Sites firing once per checkpoint (or less) need countdown 1 to be
  // reachable in every drive mode; rotation/append sites fire often enough
  // for a randomized countdown.
  const std::vector<std::string> once_sites = {
      "ckpt.seal.begin",        "ckpt.seal.torn",
      "ckpt.seal.commit",       "ckpt.prune.unlink",
      "blocklog.compact.manifest", "blocklog.compact.unlink",
      "certlog.compact.manifest",  "certlog.compact.unlink",
  };
  const std::vector<std::string> multi_sites = {
      "blocklog.rotate.begin",  "blocklog.rotate.rename",
      "blocklog.rotate.sidecar", "blocklog.rotate.newfile",
      "certlog.rotate.begin",   "certlog.rotate.rename",
      "certlog.rotate.sidecar", "certlog.rotate.newfile",
      "blocklog.append.torn",   "certlog.append.torn",
      "issuer.durable.after_block_append",
  };

  const std::string ckpt_dir = ::testing::TempDir() + "cksoak_ckpt";
  Rng rng(0xC4EC7B01A7ull);
  std::map<std::string, std::uint64_t> fired_at;
  std::uint64_t crashed_cycles = 0;

  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    LogPaths paths = FreshPaths("cksoak");
    // FreshPaths clears the single-file logs; also clear the segment,
    // manifest, and checkpoint files previous cycles rotated out.
    for (const std::string& base : {paths.blocks, paths.certs}) {
      std::remove((base + ".manifest").c_str());
      for (int first = 0; first < 32; ++first) {
        const std::string seg = base + ".seg." + std::to_string(first);
        std::remove(seg.c_str());
        std::remove((seg + ".idx").c_str());
      }
    }
    for (int h = 0; h <= 16; ++h) {
      std::remove((ckpt_dir + "/ckpt-" + std::to_string(h) + ".dcp").c_str());
    }

    const bool once = rng.NextBelow(2) == 1;
    const std::string& site = once ? once_sites[rng.NextBelow(once_sites.size())]
                                   : multi_sites[rng.NextBelow(multi_sites.size())];
    const std::uint64_t countdown = once ? 1 : 1 + rng.NextBelow(2);
    const bool pipelined = rng.NextBelow(2) == 1;
    SCOPED_TRACE(site + " countdown=" + std::to_string(countdown) +
                 (pipelined ? " pipelined" : " serial"));

    std::vector<std::pair<std::uint64_t, Bytes>> announced;
    auto sink = [&](const chain::Block& blk, const BlockCertificate& cert) {
      announced.emplace_back(blk.header.height, cert.Serialize());
      return Status::Ok();
    };
    DurableIssuerOptions options = MakeOptions(paths, sink);
    options.segment_records = 3;
    ckpt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dir = ckpt_dir;
    ckpt_cfg.interval = 3;
    ckpt_cfg.keep = 2;

    // Phase 1: drive until the armed site kills the issuer.
    bool crashed = false;
    {
      auto ci = ckpt::CheckpointedIssuer::Open(rig.config, rig.registry,
                                               options, ckpt_cfg);
      ASSERT_TRUE(ci.ok()) << ci.message();
      CrashPoints::Global().Arm(site, countdown);
      try {
        if (pipelined) {
          Status st = ci.value().CertifyBlocksPipelined(rig.blocks);
          ASSERT_TRUE(st.ok()) << st.message();
        } else {
          for (const chain::Block& blk : rig.blocks) {
            Status st = ci.value().CertifyBlock(blk);
            ASSERT_TRUE(st.ok()) << st.message();
          }
        }
      } catch (const CrashInjected& e) {
        crashed = true;
        ++fired_at[e.site];
      }
      CrashPoints::Global().Disarm();
    }
    if (crashed) ++crashed_cycles;

    // Phase 2: recover (through a checkpoint when one exists) and finish.
    // History compacted BEFORE recovery starts forces checkpoint bootstrap
    // (the replay-from-genesis path is gone); read that state first — the
    // reopen itself may seal an overdue checkpoint and compact further.
    std::uint64_t pre_base = 0;
    {
      auto peek = chain::BlockStore::Open(paths.blocks, 3);
      ASSERT_TRUE(peek.ok()) << peek.message();
      pre_base = peek.value().BaseHeight();
    }
    {
      auto ci = ckpt::CheckpointedIssuer::Open(rig.config, rig.registry,
                                               options, ckpt_cfg);
      ASSERT_TRUE(ci.ok()) << ci.message();
      const core::DurableCertificateIssuer& inner = ci.value().Durable();
      if (pre_base > 0) {
        EXPECT_GT(ci.value().BootstrapHeight(), 0u);
      }
      for (std::uint64_t h = inner.Issuer().Node().Height();
           h < rig.blocks.size(); ++h) {
        Status st = ci.value().CertifyBlock(rig.blocks[h]);
        ASSERT_TRUE(st.ok()) << st.message();
      }

      // Exactness over everything retained: logical counts match the
      // reference exactly, and every readable record is byte-identical.
      ASSERT_EQ(inner.Blocks().Count(), rig.blocks.size() + 1);
      ASSERT_EQ(inner.Certs().Count(), ref_certs.size());
      const std::uint64_t first_block =
          std::max<std::uint64_t>(inner.Blocks().BaseHeight(), 1);
      for (std::uint64_t h = first_block; h <= rig.blocks.size(); ++h) {
        ASSERT_EQ(inner.Blocks().Get(h).value().Serialize(),
                  rig.blocks[h - 1].Serialize())
            << "block " << h;
      }
      for (std::uint64_t i = inner.Certs().BaseIndex(); i < ref_certs.size();
           ++i) {
        ASSERT_EQ(inner.Certs().Get(i).value().Serialize(), ref_certs[i])
            << "cert " << i;
      }
      EXPECT_EQ(inner.Issuer().Node().Tip().header.Hash(),
                rig.blocks.back().header.Hash());

      // Announced => durable-or-compacted, each height at most once, always
      // the reference bytes: clients never observe equivocation.
      std::set<std::uint64_t> seen;
      for (const auto& [height, bytes] : announced) {
        EXPECT_TRUE(seen.insert(height).second)
            << "height " << height << " announced twice";
        ASSERT_GE(height, 1u);
        ASSERT_LE(height, ref_certs.size());
        EXPECT_EQ(bytes, ref_certs[height - 1]) << "announced cert " << height;
      }
    }
  }

  EXPECT_GE(crashed_cycles, cycles / 3) << "soak barely crashed";
  if (cycles >= 150) {
    for (const std::string& site : once_sites) {
      EXPECT_GE(fired_at[site], 1u) << site << " never fired";
    }
    for (const std::string& site : multi_sites) {
      EXPECT_GE(fired_at[site], 1u) << site << " never fired";
    }
  }
}

}  // namespace
}  // namespace dcert::core
