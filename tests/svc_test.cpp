// Concurrent query-serving subsystem: SpServer behind the loopback and TCP
// transports — concurrent clients, response-cache invalidation on new
// certified blocks, admission-control shedding, graceful drain, client-side
// rejection of tampered replies, and the robustness layer: per-call
// deadlines, connection-churn lifecycle, connection caps, and a seeded
// fault-injection soak driving the retrying client.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chain/node.h"
#include "common/rng.h"
#include "dcert/durable_issuer.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "obs/metrics.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "svc/fault_transport.h"
#include "svc/response_cache.h"
#include "svc/sp_client.h"
#include "svc/sp_server.h"
#include "svc/tcp_transport.h"
#include "workloads/workloads.h"

namespace dcert::svc {
namespace {

/// A small certified chain (blocks + announcements) shared by the tests, plus
/// one account known to have historical writes.
struct CertifiedChain {
  std::vector<AnnounceRequest> announcements;
  std::uint64_t hot_account = 0;
  std::uint64_t tip_height = 0;

  explicit CertifiedChain(int blocks, std::size_t txs = 6) {
    chain::ChainConfig config;
    config.difficulty_bits = 2;
    auto registry = workloads::MakeBlockbenchRegistry(1);
    core::CertificateIssuer ci(config, registry);
    auto hist = std::make_shared<query::HistoricalIndex>("historical");
    ci.AttachIndex(hist);
    chain::FullNode node(config, registry);
    chain::Miner miner(node);
    workloads::AccountPool pool(4, 77);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    workloads::WorkloadGenerator gen(params, pool);

    for (int i = 0; i < blocks; ++i) {
      auto block =
          miner.MineBlock(gen.NextBlockTxs(txs), 1700000000 + node.Height() * 15);
      if (!block.ok()) throw std::runtime_error("mine: " + block.message());
      if (Status st = node.SubmitBlock(block.value()); !st) {
        throw std::runtime_error("submit: " + st.message());
      }
      auto icerts = ci.ProcessBlockHierarchical(block.value());
      if (!icerts.ok()) throw std::runtime_error("certify: " + icerts.message());
      AnnounceRequest ann;
      ann.block = block.value();
      ann.block_cert = *ci.LatestCert();
      ann.index_digest = hist->CurrentDigest();
      ann.index_cert = icerts.value()[0];
      announcements.push_back(std::move(ann));
      if (hot_account == 0) {
        auto writes = query::ExtractHistoricalWrites(block.value());
        if (!writes.empty()) hot_account = writes.front().account_word;
      }
    }
    if (hot_account == 0) {
      throw std::runtime_error("workload produced no historical writes");
    }
    tip_height = announcements.back().block.header.height;
  }
};

const CertifiedChain& Chain() {
  static CertifiedChain chain(4);
  return chain;
}

/// Announces every block of `chain` into `server`, expecting success.
void AnnounceAll(SpServer& server, const CertifiedChain& chain) {
  for (const auto& ann : chain.announcements) {
    Status st = server.Announce(ann);
    ASSERT_TRUE(st.ok()) << st.message();
  }
}

/// Fetches the tip through `client` and validates it exactly as a superlight
/// client: block certificate, then the index certificate binding. Returns the
/// certified historical digest replies must verify against.
Hash256 TrustedDigest(SpClient& client) {
  auto tip = client.FetchTip();
  EXPECT_TRUE(tip.ok()) << tip.message();
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  Status accept = light.ValidateAndAccept(tip.value().header, tip.value().block_cert);
  EXPECT_TRUE(accept.ok()) << accept.message();
  Status index = light.AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                       tip.value().index_digest, "historical");
  EXPECT_TRUE(index.ok()) << index.message();
  auto digest = light.CertifiedIndexDigest("historical");
  EXPECT_TRUE(digest.has_value());
  return digest.value_or(Hash256{});
}

TEST(SvcResponseCacheTest, HitsMissesEvictionsInvalidations) {
  ResponseCache cache(/*shards=*/2, /*capacity_per_shard=*/2);
  const Hash256 k1 = ResponseCache::Key(Op::kHistorical, 1, 1, 10, 10);
  const Hash256 k2 = ResponseCache::Key(Op::kHistorical, 2, 1, 10, 10);
  EXPECT_NE(k1, k2);
  // Same query at a different tip is a different key — stale hits impossible.
  EXPECT_NE(k1, ResponseCache::Key(Op::kHistorical, 1, 1, 10, 11));

  EXPECT_FALSE(cache.Lookup(k1).has_value());
  cache.Insert(k1, Bytes{0xaa});
  auto hit = cache.Lookup(k1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit.value(), Bytes{0xaa});
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);

  // Overfill every shard; evictions must kick in and stats must add up.
  for (std::uint64_t a = 10; a < 30; ++a) {
    cache.Insert(ResponseCache::Key(Op::kAggregate, a, 1, 10, 10), Bytes{1});
  }
  EXPECT_GT(cache.Stats().evictions, 0u);

  cache.InvalidateAll();
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  EXPECT_FALSE(cache.Lookup(k2).has_value());
}

TEST(SvcLoopbackTest, ConcurrentClientsGetVerifiableProofs) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);

  SpClient tip_client(loopback.Connect());
  const Hash256 digest = TrustedDigest(tip_client);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  std::atomic<int> verified{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SpClient client(loopback.Connect());
      Rng rng(0x7e57 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t from = rng.NextRange(1, chain.tip_height);
        if (rng.NextRange(0, 1) == 0) {
          auto r = client.Historical(chain.hot_account, from, chain.tip_height);
          if (!r.ok()) continue;
          auto v = query::HistoricalIndex::VerifyQuery(
              digest, chain.hot_account, from, chain.tip_height,
              r.value().proof);
          if (v.ok()) ++verified;
        } else {
          auto r = client.Aggregate(chain.hot_account, from, chain.tip_height);
          if (!r.ok()) continue;
          auto v = query::HistoricalIndex::VerifyAggregateQuery(
              digest, chain.hot_account, from, chain.tip_height,
              r.value().proof);
          if (v.ok()) ++verified;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Default admission bound (64) exceeds the concurrency, so nothing sheds
  // and every reply must have verified.
  EXPECT_EQ(verified.load(), kThreads * kPerThread);
  SpServerStats stats = server.Stats();
  EXPECT_GE(stats.served, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.tip_height, chain.tip_height);
  server.Shutdown();
}

TEST(SvcLoopbackTest, CacheInvalidatedOnNewCertifiedBlock) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  // Hold the last block back so we can land it mid-test.
  for (std::size_t i = 0; i + 1 < chain.announcements.size(); ++i) {
    ASSERT_TRUE(server.Announce(chain.announcements[i]).ok());
  }

  SpClient client(loopback.Connect());
  const std::uint64_t old_tip = chain.tip_height - 1;
  ASSERT_TRUE(client.Historical(chain.hot_account, 1, old_tip).ok());
  ASSERT_TRUE(client.Historical(chain.hot_account, 1, old_tip).ok());
  SpServerStats before = server.Stats();
  EXPECT_EQ(before.cache.misses, 1u);
  EXPECT_EQ(before.cache.hits, 1u);

  // New certified block: cache flushed, and the same query now regenerates
  // its proof against the new tip (a miss again).
  ASSERT_TRUE(server.Announce(chain.announcements.back()).ok());
  auto after_block = client.Historical(chain.hot_account, 1, old_tip);
  ASSERT_TRUE(after_block.ok());
  EXPECT_EQ(after_block.value().tip_height, chain.tip_height);
  SpServerStats after = server.Stats();
  EXPECT_GT(after.cache.invalidations, before.cache.invalidations);
  EXPECT_EQ(after.cache.misses, 2u);
  EXPECT_EQ(after.tip_height, chain.tip_height);
  server.Shutdown();
}

TEST(SvcLoopbackTest, AdmissionControlShedsWithBusy) {
  const CertifiedChain& chain = Chain();
  SpServerConfig config;
  config.workers = 1;
  config.max_queue = 1;  // one admitted request at a time
  config.debug_process_delay_ms = 100;
  SpServer server(config);
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0}, busy{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SpClient client(loopback.Connect());
      auto r = client.Historical(chain.hot_account, 1, chain.tip_height);
      if (r.ok()) {
        ++ok;
      } else if (client.LastReplyBusy()) {
        ++busy;
      }
    });
  }
  for (auto& t : threads) t.join();
  // With a single slot and a 100ms service time, the concurrent burst cannot
  // all be admitted: at least one OK and at least one shed-with-busy.
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(busy.load(), 1);
  EXPECT_EQ(ok.load() + busy.load(), kThreads);
  EXPECT_GE(server.Stats().shed, static_cast<std::uint64_t>(busy.load()));
  server.Shutdown();
}

TEST(SvcLoopbackTest, GracefulDrainCompletesInFlightRequests) {
  const CertifiedChain& chain = Chain();
  SpServerConfig config;
  config.debug_process_delay_ms = 150;
  SpServer server(config);
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);

  std::atomic<bool> started{false};
  std::atomic<bool> in_flight_ok{false};
  std::thread requester([&] {
    SpClient client(loopback.Connect());
    started = true;
    auto r = client.Historical(chain.hot_account, 1, chain.tip_height);
    in_flight_ok = r.ok();
  });
  // Let the request get admitted, then drain while it is still processing
  // (the 150ms service time leaves plenty of overlap).
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.Shutdown();
  requester.join();
  EXPECT_TRUE(in_flight_ok.load()) << "drain must complete admitted requests";

  // After shutdown the transport is stopped: new calls fail, not hang.
  SpClient late(loopback.Connect());
  auto r = late.Historical(chain.hot_account, 1, chain.tip_height);
  EXPECT_FALSE(r.ok());
}

TEST(SvcLoopbackTest, OutOfOrderAnnouncementsApplyContiguously) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());

  // Height 2 before height 1: buffered, nothing applied yet.
  ASSERT_TRUE(server.Announce(chain.announcements[1]).ok());
  EXPECT_EQ(server.Stats().blocks_applied, 0u);
  EXPECT_EQ(server.Stats().tip_height, 0u);

  // Height 1 lands: both apply contiguously.
  ASSERT_TRUE(server.Announce(chain.announcements[0]).ok());
  EXPECT_EQ(server.Stats().blocks_applied, 2u);
  EXPECT_EQ(server.Stats().tip_height, 2u);
  server.Shutdown();
}

TEST(SvcLoopbackTest, TamperedAnnouncementRejected) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());

  // A forged index digest must not pass the index-certificate binding.
  AnnounceRequest forged = chain.announcements.front();
  forged.index_digest[0] ^= 0x01;
  EXPECT_FALSE(server.Announce(forged).ok());

  // A tampered block body must not pass the block-certificate digest check.
  AnnounceRequest tampered = chain.announcements.front();
  tampered.block.header.timestamp += 1;
  EXPECT_FALSE(server.Announce(tampered).ok());

  SpServerStats stats = server.Stats();
  EXPECT_EQ(stats.announce_rejected, 2u);
  EXPECT_EQ(stats.blocks_applied, 0u);
  server.Shutdown();
}

TEST(SvcTcpTest, EndToEndOverRealSocketsVerifies) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  auto conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(conn.ok()) << conn.message();
  SpClient client(std::move(conn.value()));
  const Hash256 digest = TrustedDigest(client);

  auto hist = client.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(hist.ok()) << hist.message();
  auto versions = query::HistoricalIndex::VerifyQuery(
      digest, chain.hot_account, 1, chain.tip_height, hist.value().proof);
  ASSERT_TRUE(versions.ok()) << versions.message();
  EXPECT_FALSE(versions.value().empty());

  auto agg = client.Aggregate(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(agg.ok()) << agg.message();
  auto total = query::HistoricalIndex::VerifyAggregateQuery(
      digest, chain.hot_account, 1, chain.tip_height, agg.value().proof);
  ASSERT_TRUE(total.ok()) << total.message();
  EXPECT_EQ(total.value().count, versions.value().size());
  server.Shutdown();
}

TEST(SvcTcpTest, TamperedReplyRejectedByClientVerification) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  auto tip_conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(tip_conn.ok());
  SpClient tip_client(std::move(tip_conn.value()));
  const Hash256 digest = TrustedDigest(tip_client);

  // Raw round trip so we can corrupt the reply the way a malicious SP (or
  // network) would before it reaches the verifier.
  auto conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(conn.ok());
  QueryRequest q{Op::kHistorical, chain.hot_account, 1, chain.tip_height};
  auto raw = conn.value()->Call(EncodeQueryRequest(q));
  ASSERT_TRUE(raw.ok()) << raw.message();
  ASSERT_GT(raw.value().size(), 16u);

  // Every single-byte corruption of the proof must be caught: either the
  // reply no longer decodes, or verification against the certified digest
  // fails. Flip a few positions spread across the frame.
  for (std::size_t pos : {raw.value().size() / 4, raw.value().size() / 2,
                          raw.value().size() - 2}) {
    Bytes tampered = raw.value();
    tampered[pos] ^= 0x01;
    auto envelope = DecodeReplyEnvelope(tampered);
    if (!envelope.ok() || envelope.value().code != Code::kOk) continue;
    auto body = DecodeQueryBody(envelope.value().body);
    if (!body.ok()) continue;
    auto verified = query::HistoricalIndex::VerifyQuery(
        digest, q.account, q.from_height, q.to_height, body.value().second);
    EXPECT_FALSE(verified.ok())
        << "tampered byte " << pos << " verified against the certified digest";
  }

  // Sanity: the untampered reply does verify.
  auto envelope = DecodeReplyEnvelope(raw.value());
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope.value().code, Code::kOk);
  auto body = DecodeQueryBody(envelope.value().body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(query::HistoricalIndex::VerifyQuery(digest, q.account,
                                                  q.from_height, q.to_height,
                                                  body.value().second)
                  .ok());
  server.Shutdown();
}

TEST(SvcConcurrencyTest, AnnouncementsRaceQueriesSafely) {
  // Queries under shared locks race block applications under the exclusive
  // lock; run under TSan this is the data-race canary for the subsystem.
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  ASSERT_TRUE(server.Announce(chain.announcements.front()).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      SpClient client(loopback.Connect());
      while (!stop.load()) {
        auto r = client.Historical(chain.hot_account, 1, chain.tip_height);
        // Replies may race the tip forward but must never fail outright.
        ASSERT_TRUE(r.ok()) << r.message();
      }
    });
  }
  for (std::size_t i = 1; i < chain.announcements.size(); ++i) {
    ASSERT_TRUE(server.Announce(chain.announcements[i]).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(server.Stats().tip_height, chain.tip_height);
  EXPECT_GT(server.Stats().cache.invalidations, 0u);
  server.Shutdown();
}

/// Open fds of this process (server and clients run in-process, so every
/// connection's fds are ours).
std::size_t CountOpenFds() {
  std::size_t n = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n;
}

TEST(SvcTransportTest, LoopbackCallTimesOutOnSilentHandler) {
  LoopbackTransport loopback;
  ASSERT_TRUE(loopback.Start([](Bytes, Respond) { /* never responds */ }).ok());
  auto conn = loopback.Connect();
  const Bytes req{0x01};
  auto r = conn->Call(req, std::chrono::milliseconds(100));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsTimeoutError(r.status())) << r.message();
  loopback.Stop();
}

TEST(SvcTcpTest, CallHonorsDeadlineAgainstStalledServer) {
  // A listening socket whose backlog completes handshakes but whose owner
  // never accepts, reads, or replies — the moral equivalent of a wedged SP.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  auto conn = TcpClientTransport::Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok()) << conn.message();
  const auto t0 = std::chrono::steady_clock::now();
  auto r = conn.value()->Call(EncodeTipFetchRequest(),
                              std::chrono::milliseconds(200));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsTimeoutError(r.status())) << r.message();
  EXPECT_GE(elapsed, std::chrono::milliseconds(150));
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "deadline must bound the call";

  // After a timeout the frame stream is untrustworthy: the connection must
  // fail fast rather than risk attributing a late reply to a new request.
  auto r2 = conn.value()->Call(EncodeTipFetchRequest(),
                               std::chrono::milliseconds(200));
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(IsConnectionError(r2.status())) << r2.message();
  ::close(listen_fd);
}

TEST(SvcTcpTest, OversizedRequestRefusedWithoutDesyncingConnection) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  auto conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(conn.ok()) << conn.message();
  Bytes huge(static_cast<std::size_t>(kMaxFrameBytes) + 1, 0x00);
  auto r = conn.value()->Call(huge, std::chrono::seconds(2));
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(IsTransientTransportError(r.status())) << r.message();

  // The cap check fired before any byte hit the wire, so the same connection
  // still serves normal traffic.
  SpClient client(std::move(conn.value()));
  EXPECT_TRUE(client.FetchTip().ok());
  server.Shutdown();
}

TEST(SvcTcpTest, ConnectionChurnLeavesFdAndThreadCountsFlat) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  const std::size_t fds_before = CountOpenFds();
  constexpr int kCycles = 1000;
  for (int i = 0; i < kCycles; ++i) {
    const bool probe = i % 50 == 0;
    if (probe) {
      // The churn can outrun the server's EOF reaper (sanitizer builds
      // especially), stacking open connections toward the cap; let it catch
      // up so the probe is not shed over-cap — that path has its own test.
      for (int w = 0; w < 2000 && tcp.Stats().open_connections > 64; ++w) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    auto conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
    ASSERT_TRUE(conn.ok()) << "cycle " << i << ": " << conn.message();
    if (probe) {
      SpClient client(std::move(conn.value()));
      ASSERT_TRUE(client.FetchTip().ok()) << "cycle " << i;
    }
    // Dropping the connection closes the client fd; the server's reader must
    // notice EOF, close its fd, and deregister without waiting for Stop().
  }
  for (int i = 0; i < 500 && tcp.Stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  TcpServerStats stats = tcp.Stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_GE(stats.accepted, static_cast<std::uint64_t>(kCycles));
  // Allow a little slack for unrelated runtime fds, but a leak of one fd per
  // cycle (the pre-fix behavior) is three orders of magnitude past it.
  EXPECT_LE(CountOpenFds(), fds_before + 8);
  server.Shutdown();
}

TEST(SvcTcpTest, ConnectionCapShedsExcessConnections) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerConfig config;
  config.max_connections = 2;
  TcpServerTransport tcp(config);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  auto c1 = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  auto c2 = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(c1.ok() && c2.ok());
  SpClient client1(std::move(c1.value()));
  SpClient client2(std::move(c2.value()));
  ASSERT_TRUE(client1.FetchTip().ok());
  ASSERT_TRUE(client2.FetchTip().ok());

  // The third dial completes the TCP handshake (backlog) but the server
  // closes it on accept: its first call must fail, not hang.
  auto c3 = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(c3.ok()) << c3.message();
  auto r = c3.value()->Call(EncodeTipFetchRequest(), std::chrono::seconds(2));
  EXPECT_FALSE(r.ok());
  for (int i = 0; i < 200 && tcp.Stats().rejected_over_cap == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(tcp.Stats().rejected_over_cap, 1u);
  server.Shutdown();
}

TEST(SvcFaultTest, RetryingClientSurvivesBusyShedding) {
  const CertifiedChain& chain = Chain();
  SpServerConfig config;
  config.workers = 1;
  config.max_queue = 1;  // one admitted request at a time
  config.debug_process_delay_ms = 30;
  SpServer server(config);
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);

  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff = std::chrono::milliseconds(5);
  policy.max_backoff = std::chrono::milliseconds(40);
  policy.retry_budget = std::chrono::seconds(30);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::atomic<std::uint64_t> busy_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RetryPolicy p = policy;
      p.jitter_seed = 0xb0ff + static_cast<std::uint64_t>(t);
      SpClient client(
          [&loopback] {
            return Result<std::unique_ptr<ClientTransport>>(loopback.Connect());
          },
          p);
      for (int i = 0; i < 2; ++i) {
        auto r = client.Historical(chain.hot_account, 1, chain.tip_height);
        if (r.ok()) ++ok;
      }
      busy_seen += client.Stats().busy_replies;
    });
  }
  for (auto& t : threads) t.join();
  // Where the one-shot client saw hard failures under shedding, the retrying
  // client must converge: every call eventually succeeds.
  EXPECT_EQ(ok.load(), kThreads * 2);
  EXPECT_GE(busy_seen.load(), 1u) << "shedding never fired; bound too loose";
  EXPECT_GE(server.Stats().shed, busy_seen.load());
  server.Shutdown();
}

TEST(SvcFaultTest, SeededSoakConvergesWithZeroCorruptResultsAccepted) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);

  FaultConfig faults;
  faults.drop_rate = 0.04;
  faults.delay_rate = 0.06;
  faults.delay_ms_max = 3;
  faults.truncate_rate = 0.03;
  faults.duplicate_rate = 0.03;
  faults.corrupt_rate = 0.05;
  faults.refuse_connect_rate = 0.08;
  faults.seed = 0xD15EA5E;
  auto counters = std::make_shared<FaultCounters>();
  const std::uint16_t port = tcp.Port();
  Connector dial = FaultyConnector(
      [port] { return TcpClientTransport::Connect("127.0.0.1", port); },
      faults, counters);

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.call_deadline = std::chrono::seconds(2);
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(8);
  policy.retry_budget = std::chrono::seconds(30);
  SpClient client(dial, policy);

  // The tip must converge to the certified one through the faulty pipe; the
  // digest every accepted proof verifies against comes from that tip.
  const Hash256 digest = TrustedDigest(client);

  constexpr int kWanted = 120;
  int accepted = 0;
  std::uint64_t corrupt_rejected = 0;
  Rng workload(0x50a7);
  for (int i = 0; accepted < kWanted; ++i) {
    ASSERT_LT(i, kWanted * 4) << "soak failed to converge";
    const std::uint64_t from = workload.NextRange(1, chain.tip_height);
    auto r = client.Historical(chain.hot_account, from, chain.tip_height);
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.message();
    auto v = query::HistoricalIndex::VerifyQuery(digest, chain.hot_account,
                                                 from, chain.tip_height,
                                                 r.value().proof);
    if (v.ok()) {
      ++accepted;  // only verification admits a reply into the result set
    } else {
      ++corrupt_rejected;  // corrupted-but-decodable reply: rejected, re-ask
    }
  }
  EXPECT_EQ(accepted, kWanted);
  // The run is only meaningful if faults actually fired and made the client
  // work for its answers.
  EXPECT_GT(counters->Total(), 0u) << "fault injector never triggered";
  const SpClientStats& cs = client.Stats();
  EXPECT_GT(cs.retries, 0u);
  EXPECT_GT(cs.reconnects, 0u);
  EXPECT_EQ(cs.calls, static_cast<std::uint64_t>(kWanted) + 1 +
                          corrupt_rejected);  // +1 for the tip fetch
  server.Shutdown();
}

/// Serves a few queries through `client`, then fetches the live metrics
/// snapshot over the same wire and checks the families the ops must have
/// moved: per-kind latency histograms, server counters, and cache traffic.
void ExerciseAndCheckStats(SpClient& client, const CertifiedChain& chain) {
  const obs::MetricsSnapshot base = obs::MetricsRegistry::Global().Snapshot();
  (void)TrustedDigest(client);
  ASSERT_TRUE(client.Historical(chain.hot_account, 1, chain.tip_height).ok());
  ASSERT_TRUE(client.Historical(chain.hot_account, 1, chain.tip_height).ok());
  ASSERT_TRUE(client.Aggregate(chain.hot_account, 1, chain.tip_height).ok());

  auto snap = client.FetchStats();
  ASSERT_TRUE(snap.ok()) << snap.message();
  const obs::MetricsSnapshot got = snap.value().DeltaFrom(base);

  // The server counted the queries we just made (tip + 2 hist + agg + the
  // stats op itself happens after the snapshot the reply was built from).
  ASSERT_TRUE(got.counters.count("svc.server.served"));
  EXPECT_GE(got.counters.at("svc.server.served"), 4u);
  // Latency histograms per query kind, with plausible contents.
  ASSERT_TRUE(got.histograms.count("svc.latency.historical_ns"));
  const obs::HistogramSnapshot& hist = got.histograms.at("svc.latency.historical_ns");
  EXPECT_GE(hist.count, 2u);
  EXPECT_GT(hist.sum, 0u);
  EXPECT_GT(hist.Quantile(0.5), 0.0);
  ASSERT_TRUE(got.histograms.count("svc.latency.aggregate_ns"));
  EXPECT_GE(got.histograms.at("svc.latency.aggregate_ns").count, 1u);
  ASSERT_TRUE(got.histograms.count("svc.latency.tip_ns"));
  // The repeated historical query hit the response cache.
  ASSERT_TRUE(got.counters.count("svc.cache.hits"));
  ASSERT_TRUE(got.counters.count("svc.cache.misses"));
  EXPECT_GE(got.counters.at("svc.cache.hits") + got.counters.at("svc.cache.misses"),
            2u);
  // Certification ran when the fixture chain was built, so the process-wide
  // sgx/pool families exist in the full snapshot (not necessarily the delta).
  EXPECT_TRUE(snap.value().counters.count("sgx.ecalls"));
  EXPECT_TRUE(snap.value().counters.count("common.pool.tasks_executed"));
}

TEST(SvcStatsTest, RoundTripOverLoopback) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);
  SpClient client(loopback.Connect());
  ExerciseAndCheckStats(client, chain);
  server.Shutdown();
}

TEST(SvcStatsTest, RoundTripOverTcp) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  TcpServerTransport tcp(/*port=*/0);
  ASSERT_TRUE(server.Serve(tcp).ok());
  AnnounceAll(server, chain);
  auto conn = TcpClientTransport::Connect("127.0.0.1", tcp.Port());
  ASSERT_TRUE(conn.ok()) << conn.message();
  SpClient client(std::move(conn.value()));
  ExerciseAndCheckStats(client, chain);
  // TCP frames moved in both directions for this connection.
  auto snap = client.FetchStats();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(snap.value().counters.count("net.tcp.frames_in"));
  EXPECT_GT(snap.value().counters.at("net.tcp.frames_in"), 0u);
  EXPECT_GT(snap.value().counters.at("net.tcp.bytes_in"), 0u);
  server.Shutdown();
}

TEST(SvcStatsTest, EncodeDecodeRejectsMalformedBodies) {
  // A valid reply round-trips…
  obs::MetricsRegistry reg;
  reg.GetCounter("a.b")->Add(3);
  reg.GetGauge("a.g")->Set(-7);
  reg.GetHistogram("a.h")->Record(1000);
  Bytes reply = EncodeStatsReply(reg.Snapshot());
  ASSERT_FALSE(reply.empty());
  auto env = DecodeReplyEnvelope(reply);
  ASSERT_TRUE(env.ok());
  auto snap = DecodeStatsBody(env.value().body);
  ASSERT_TRUE(snap.ok()) << snap.message();
  EXPECT_EQ(snap.value().counters.at("a.b"), 3u);
  EXPECT_EQ(snap.value().gauges.at("a.g"), -7);
  EXPECT_EQ(snap.value().histograms.at("a.h").count, 1u);

  // …while truncations at every boundary fail cleanly instead of crashing.
  for (std::size_t cut = 0; cut < env.value().body.size(); ++cut) {
    Bytes truncated(env.value().body.begin(), env.value().body.begin() + cut);
    auto bad = DecodeStatsBody(truncated);
    EXPECT_FALSE(bad.ok()) << "decoded a truncated body at " << cut;
  }
}

/// Durable-issuer stores on disk for the Rehydrate tests: certifies `blocks`
/// kv-store blocks through a DurableCertificateIssuer and leaves the block
/// log, cert log, and sealed key behind (the issuer itself is torn down, as
/// after a CI restart).
struct DurableStoresRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::string block_log_path;
  std::string cert_log_path;
  std::uint64_t hot_account = 0;
  std::uint64_t tip_height = 0;

  DurableStoresRig(const std::string& tag, int blocks) {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    block_log_path = ::testing::TempDir() + tag + "_blocks.log";
    cert_log_path = ::testing::TempDir() + tag + "_certs.log";
    const std::string key_path = ::testing::TempDir() + tag + "_key.sealed";
    std::remove(block_log_path.c_str());
    std::remove(cert_log_path.c_str());
    std::remove(key_path.c_str());

    core::DurableIssuerOptions options;
    options.block_log_path = block_log_path;
    options.cert_log_path = cert_log_path;
    options.sealed_key_path = key_path;
    auto ci = core::DurableCertificateIssuer::Open(config, registry, options);
    if (!ci.ok()) throw std::runtime_error("open: " + ci.message());

    chain::FullNode node(config, registry);
    chain::Miner miner(node);
    workloads::AccountPool pool(4, 91);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    workloads::WorkloadGenerator gen(params, pool);
    for (int i = 0; i < blocks; ++i) {
      auto block =
          miner.MineBlock(gen.NextBlockTxs(6), 1700000000 + node.Height() * 15);
      if (!block.ok()) throw std::runtime_error("mine: " + block.message());
      if (Status st = node.SubmitBlock(block.value()); !st) {
        throw std::runtime_error("submit: " + st.message());
      }
      if (Status st = ci.value().CertifyBlock(block.value()); !st) {
        throw std::runtime_error("certify: " + st.message());
      }
      if (hot_account == 0) {
        auto writes = query::ExtractHistoricalWrites(block.value());
        if (!writes.empty()) hot_account = writes.front().account_word;
      }
    }
    tip_height = static_cast<std::uint64_t>(blocks);
  }
};

TEST(SvcRehydrateTest, RebuildsIndexFromDurableStoresAndServesCertifiedTip) {
  const DurableStoresRig rig("rehydrate_ok", 4);
  auto blocks = chain::BlockStore::Open(rig.block_log_path);
  auto certs = core::CertificateStore::Open(rig.cert_log_path);
  ASSERT_TRUE(blocks.ok()) << blocks.message();
  ASSERT_TRUE(certs.ok()) << certs.message();

  SpServer server(SpServerConfig{});
  ASSERT_TRUE(server.Rehydrate(blocks.value(), certs.value()).ok());
  SpServerStats stats = server.Stats();
  EXPECT_EQ(stats.blocks_applied, rig.tip_height);
  EXPECT_EQ(stats.tip_height, rig.tip_height);

  // Rehydrate is a bootstrap, not a merge: a second call must refuse.
  EXPECT_FALSE(server.Rehydrate(blocks.value(), certs.value()).ok());

  // The restored tip serves and its BLOCK certificate validates exactly as a
  // superlight client would check it. The index-certificate slot holds a
  // placeholder that clients must REJECT (fail-safe: the durable stores hold
  // block certs only; certified-index trust resumes with the next live
  // announcement).
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  SpClient client(loopback.Connect());
  auto tip = client.FetchTip();
  ASSERT_TRUE(tip.ok()) << tip.message();
  EXPECT_EQ(tip.value().header.height, rig.tip_height);
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  EXPECT_TRUE(
      light.ValidateAndAccept(tip.value().header, tip.value().block_cert).ok());
  EXPECT_FALSE(light
                   .AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                    tip.value().index_digest, "historical")
                   .ok());

  // The rebuilt historical index serves proofs that verify against the
  // served index digest.
  auto r = client.Historical(rig.hot_account, 1, rig.tip_height);
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_TRUE(query::HistoricalIndex::VerifyQuery(
                  tip.value().index_digest, rig.hot_account, 1, rig.tip_height,
                  r.value().proof)
                  .ok());
  server.Shutdown();
}

TEST(SvcRehydrateTest, RefusesUnreconciledOrMismatchedStores) {
  const DurableStoresRig rig("rehydrate_bad", 3);
  auto blocks = chain::BlockStore::Open(rig.block_log_path);
  ASSERT_TRUE(blocks.ok());

  // A certificate that does not bind its block (wrong digest) is rejected —
  // rehydration validates like an announcement, it does not trust the disk.
  {
    const std::string path = ::testing::TempDir() + "rehydrate_swapped_certs.log";
    std::remove(path.c_str());
    auto good = core::CertificateStore::Open(rig.cert_log_path);
    auto swapped = core::CertificateStore::Open(path);
    ASSERT_TRUE(good.ok());
    ASSERT_TRUE(swapped.ok());
    // Cert for block 2 filed under block 1 (and vice versa).
    ASSERT_TRUE(swapped.value().Append(good.value().Get(1).value()).ok());
    ASSERT_TRUE(swapped.value().Append(good.value().Get(0).value()).ok());
    ASSERT_TRUE(swapped.value().Append(good.value().Get(2).value()).ok());
    SpServer server(SpServerConfig{});
    EXPECT_FALSE(server.Rehydrate(blocks.value(), swapped.value()).ok());
    EXPECT_EQ(server.Stats().blocks_applied, 0u);
  }

  // Cert log more than one record behind the block log: the CI must
  // reconcile (re-certify the gap) before a server can trust the stores.
  // (Runs last: the truncation physically shortens the rig's cert log.)
  {
    auto certs = core::CertificateStore::Open(rig.cert_log_path);
    ASSERT_TRUE(certs.ok());
    ASSERT_TRUE(certs.value().TruncateTo(1).ok());
    SpServer server(SpServerConfig{});
    Status st = server.Rehydrate(blocks.value(), certs.value());
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("reconcile"), std::string::npos) << st.message();
    EXPECT_EQ(server.Stats().blocks_applied, 0u);
  }
}

TEST(SvcHealthTest, HealthProbeReportsTipLoadAndBuild) {
  const CertifiedChain& chain = Chain();
  SpServer server(SpServerConfig{});
  LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  AnnounceAll(server, chain);

  SpClient client(loopback.Connect());
  // Drive some traffic first so `served` has something to count.
  ASSERT_TRUE(client.Historical(chain.hot_account, 1, chain.tip_height).ok());
  auto health = client.FetchHealth();
  ASSERT_TRUE(health.ok()) << health.message();
  EXPECT_EQ(health.value().tip_height, chain.tip_height);
  EXPECT_GE(health.value().served, 1u);
  EXPECT_EQ(health.value().shed, 0u);
  EXPECT_FALSE(health.value().build.empty());

  // The probe is monotone where it must be: uptime and served never regress.
  auto again = client.FetchHealth();
  ASSERT_TRUE(again.ok()) << again.message();
  EXPECT_GE(again.value().uptime_ms, health.value().uptime_ms);
  EXPECT_GT(again.value().served, health.value().served);

  // Encode/decode rejects malformed bodies cleanly.
  const Bytes reply = EncodeHealthReply(health.value());
  auto env = DecodeReplyEnvelope(reply);
  ASSERT_TRUE(env.ok());
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}}) {
    Bytes trunc(env.value().body.begin(), env.value().body.begin() + cut);
    EXPECT_FALSE(DecodeHealthBody(trunc).ok()) << cut;
  }
  server.Shutdown();
}

TEST(SvcTcpTest, RestartUnderLoadReconnectsWithZeroCorruptAccepted) {
  // An SpServer dies mid-load and a replacement comes up on a fresh port.
  // Clients dial through a Connector reading the current port, so their
  // retry/redial machinery must carry them across the outage; every reply
  // accepted on either side of the restart must verify against the certified
  // digest.
  const CertifiedChain& chain = Chain();

  auto server = std::make_unique<SpServer>(SpServerConfig{});
  auto tcp = std::make_unique<TcpServerTransport>(/*port=*/0);
  ASSERT_TRUE(server->Serve(*tcp).ok());
  AnnounceAll(*server, chain);
  std::atomic<std::uint16_t> port{tcp->Port()};

  RetryPolicy policy;
  policy.max_attempts = 30;
  policy.call_deadline = std::chrono::seconds(2);
  policy.initial_backoff = std::chrono::milliseconds(2);
  policy.max_backoff = std::chrono::milliseconds(50);
  policy.retry_budget = std::chrono::seconds(30);

  constexpr int kThreads = 3;
  constexpr int kQueriesPerThread = 30;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<bool> restarted{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RetryPolicy p = policy;
      p.jitter_seed = 0x4e57a47 + static_cast<std::uint64_t>(t);
      SpClient client(
          [&port] { return TcpClientTransport::Connect("127.0.0.1", port.load()); },
          p);
      const Hash256 digest = TrustedDigest(client);
      auto one_query = [&] {
        auto r = client.Historical(chain.hot_account, 1, chain.tip_height);
        if (!r.ok()) return;  // outage windows may exhaust the budget
        auto v = query::HistoricalIndex::VerifyQuery(
            digest, chain.hot_account, 1, chain.tip_height, r.value().proof);
        if (v.ok()) {
          ++accepted;
        } else {
          ++rejected;
        }
      };
      // Phase 1: keep load on the wire until the restart lands, so every
      // worker is guaranteed to straddle the outage…
      while (!restarted.load()) one_query();
      // …phase 2: the same client (same redial machinery) must then take
      // real traffic through the replacement server.
      for (int i = 0; i < kQueriesPerThread; ++i) one_query();
      reconnects += client.Stats().reconnects;
    });
  }

  // Let the load ramp, then kill and replace the server.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->Shutdown();
  tcp.reset();
  server = std::make_unique<SpServer>(SpServerConfig{});
  tcp = std::make_unique<TcpServerTransport>(/*port=*/0);
  ASSERT_TRUE(server->Serve(*tcp).ok());
  AnnounceAll(*server, chain);
  port.store(tcp->Port());
  restarted.store(true);

  for (auto& w : workers) w.join();

  // The replacement took real traffic, the outage forced redials, and not a
  // single unverified reply slipped into the accepted set.
  EXPECT_TRUE(restarted.load());
  EXPECT_GT(accepted.load(), kThreads * kQueriesPerThread / 2);
  EXPECT_EQ(rejected.load(), 0);
  EXPECT_GT(reconnects.load(), 0u);
  EXPECT_GT(server->Stats().served, 0u);
  server->Shutdown();
}

}  // namespace
}  // namespace dcert::svc
