// ThreadPool semantics the parallel hot paths rely on: result/exception
// propagation through Submit, reentrant Submit/ParallelFor from inside pool
// tasks (no deadlock on a small pool), and full iteration coverage.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dcert::common {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.WorkerCount(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](std::size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 5) throw std::invalid_argument("bad");
                                }),
               std::invalid_argument);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, ReentrantSubmitFromPoolTask) {
  ThreadPool pool(1);  // worst case: one worker, nested waits must help
  auto outer = pool.Submit([&pool] {
    auto inner = pool.Submit([] { return 21; });
    // The single worker is busy running *this* task; draining the inner task
    // must not deadlock. ParallelFor's helping wait covers this; for a raw
    // future we hand the inner task a chance to run via ParallelFor.
    int sum = 0;
    pool.ParallelFor(4, [&](std::size_t) {});
    sum = inner.get();
    return 2 * sum;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ZeroAndOneIterationRunInline) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
  int ran = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  ThreadPool& pool = ThreadPool::Shared();
  EXPECT_GE(pool.WorkerCount(), 1u);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace dcert::common
