// Focused coverage for corners the larger suites pass over: generic modular
// reduction (group-order modulus), proof-structure malformations constructed
// by hand, generator determinism, and small API contracts.
#include <gtest/gtest.h>

#include "chain/node.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/u256.h"
#include "mht/mpt.h"
#include "sgxsim/enclave.h"
#include "workloads/workloads.h"

namespace dcert {
namespace {

using crypto::Curve;
using crypto::U256;

TEST(U256Coverage, GenericFoldReductionModGroupOrder) {
  // The group order's c is 129 bits, so Reduce512 takes the generic fold
  // loop (the field prime takes the single-limb fast path). Cross-check the
  // two paths through an algebraic identity: for x < n,
  // (x * n + x) mod n == x... n mod n == 0, so compute (a*b) mod n and
  // compare against iterated addition.
  const auto& fn = Curve().Fn();
  U256 a = fn.Reduce(U256::FromHex("deadbeef12345678deadbeef12345678deadbeef12"
                                   "345678deadbeef12345678"));
  U256 acc(0);
  for (int i = 0; i < 1000; ++i) acc = fn.Add(acc, a);
  EXPECT_EQ(fn.Mul(a, U256(1000)), acc);
  // And n * anything ≡ 0.
  EXPECT_TRUE(fn.Mul(Curve().N(), a).IsZero());
}

TEST(U256Coverage, PowEdgeCases) {
  const auto& fp = Curve().Fp();
  EXPECT_EQ(fp.Pow(U256(12345), U256(0)), U256(1));
  EXPECT_EQ(fp.Pow(U256(12345), U256(1)), U256(12345));
  EXPECT_EQ(fp.Inv(U256(1)), U256(1));
}

TEST(U256Coverage, FromHexRejectsOverlong) {
  EXPECT_THROW(U256::FromHex(std::string(65, 'f')), std::invalid_argument);
}

TEST(Hash256Coverage, FromHexRejectsWrongLength) {
  EXPECT_THROW(Hash256::FromHex("abcd"), std::invalid_argument);
  EXPECT_THROW(Hash256::FromHex(std::string(66, '0')), std::invalid_argument);
}

TEST(MptCoverage, OnPathChildListedExplicitlyRejected) {
  // A handcrafted proof that lists the on-path child in the sparse sibling
  // set must be rejected (the verifier inserts the computed child there).
  mht::MptTrie trie;
  Hash256 key = crypto::Sha256::Digest(StrBytes("account"));
  trie.Put(key, crypto::Sha256::Digest(StrBytes("value")));
  Hash256 other = crypto::Sha256::Digest(StrBytes("other"));
  trie.Put(other, crypto::Sha256::Digest(StrBytes("value2")));

  mht::MptProof proof = trie.Prove(key);
  if (!proof.steps.empty()) {
    // Inject the on-path nibble into the first step's child list.
    std::uint8_t on_path = key[0] >> 4;  // nibble 0
    proof.steps[0].children.emplace_back(on_path,
                                         crypto::Sha256::Digest(StrBytes("junk")));
    std::sort(proof.steps[0].children.begin(), proof.steps[0].children.end());
    EXPECT_FALSE(mht::MptTrie::VerifyGet(trie.Root(), key, proof).ok());
  }
}

TEST(MptCoverage, UnsortedChildrenRejected) {
  mht::MptTrie trie;
  for (int i = 0; i < 40; ++i) {
    trie.Put(crypto::Sha256::Digest(StrBytes("k" + std::to_string(i))),
             crypto::Sha256::Digest(StrBytes("v")));
  }
  Hash256 key = crypto::Sha256::Digest(StrBytes("k0"));
  mht::MptProof proof = trie.Prove(key);
  bool swapped = false;
  for (auto& step : proof.steps) {
    if (step.children.size() >= 2) {
      std::swap(step.children[0], step.children[1]);
      swapped = true;
      break;
    }
  }
  if (swapped) {
    EXPECT_FALSE(mht::MptTrie::VerifyGet(trie.Root(), key, proof).ok());
  }
}

TEST(EnclaveCoverage, VoidEcallAccountsToo) {
  sgxsim::Enclave enclave("cov", "1.0");
  int side_effect = 0;
  enclave.Ecall(128, [&] { side_effect = 7; });
  EXPECT_EQ(side_effect, 7);
  EXPECT_EQ(enclave.Costs().ecalls(), 1u);
}

TEST(WorkloadCoverage, GeneratorIsDeterministic) {
  workloads::AccountPool pool_a(4, 9), pool_b(4, 9);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kSmallBank;
  params.seed = 1234;
  params.instances_per_workload = 2;
  workloads::WorkloadGenerator gen_a(params, pool_a);
  workloads::WorkloadGenerator gen_b(params, pool_b);
  for (int i = 0; i < 20; ++i) {
    chain::Transaction a = gen_a.NextTx();
    chain::Transaction b = gen_b.NextTx();
    EXPECT_EQ(a.Hash(), b.Hash()) << "tx " << i;
  }
}

TEST(ChainCoverage, EmptyTxRootIsStable) {
  EXPECT_EQ(chain::Block::ComputeTxRoot({}), chain::Block::ComputeTxRoot({}));
}

TEST(ChainCoverage, GetBlockOutOfRangeThrows) {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  chain::FullNode node(config, workloads::MakeBlockbenchRegistry(1));
  EXPECT_NO_THROW(node.GetBlock(0));
  EXPECT_THROW(node.GetBlock(1), std::out_of_range);
}

TEST(StatusCoverage, ContextChains) {
  Status err = Status::Error("inner").WithContext("mid").WithContext("outer");
  EXPECT_EQ(err.message(), "outer: mid: inner");
}

TEST(PointCoverage, InfinityRoundTripsThroughJacobian) {
  crypto::JacobianPoint inf = crypto::JacobianPoint::Infinity();
  crypto::AffinePoint affine = inf.ToAffine();
  EXPECT_TRUE(affine.infinity);
  EXPECT_TRUE(crypto::JacobianPoint::FromAffine(affine).IsInfinity());
  EXPECT_FALSE(affine.IsOnCurve());  // infinity is not a curve point
}

}  // namespace
}  // namespace dcert
