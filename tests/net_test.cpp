// Network simulator + DCert workflow actors.
#include <gtest/gtest.h>

#include "net/actors.h"
#include "net/simnet.h"

namespace dcert::net {
namespace {

/// Minimal test actor: records deliveries, can echo.
class Recorder final : public Actor {
 public:
  explicit Recorder(std::string name) : name_(std::move(name)) {}
  std::string Name() const override { return name_; }
  void OnMessage(SimNetwork& net, const Message& msg) override {
    (void)net;
    received.push_back(msg);
    receive_times.push_back(net.Now());
  }
  void OnTimer(SimNetwork& net, std::uint64_t timer_id) override {
    (void)net;
    timers.push_back(timer_id);
  }

  std::vector<Message> received;
  std::vector<SimTime> receive_times;
  std::vector<std::uint64_t> timers;

 private:
  std::string name_;
};

TEST(SimNetTest, DeliversWithLatencyBounds) {
  SimNetwork net(1, 100, 200);
  Recorder a("a"), b("b");
  net.AddActor(&a);
  net.AddActor(&b);
  net.Send("a", "b", "t", StrBytes("hello"));
  net.Run(10'000);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].payload, StrBytes("hello"));
  EXPECT_GE(b.receive_times[0], 100u);
  EXPECT_LE(b.receive_times[0], 200u);
  EXPECT_TRUE(a.received.empty());
}

TEST(SimNetTest, BroadcastReachesEveryoneButSender) {
  SimNetwork net(2, 10, 20);
  Recorder a("a"), b("b"), c("c");
  net.AddActor(&a);
  net.AddActor(&b);
  net.AddActor(&c);
  net.Broadcast("a", "t", StrBytes("x"));
  net.Run(1'000);
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(net.Stats().messages_delivered, 2u);
}

TEST(SimNetTest, TimersFireInOrder) {
  SimNetwork net(3);
  Recorder a("a");
  net.AddActor(&a);
  net.ScheduleTimer("a", 300, 3);
  net.ScheduleTimer("a", 100, 1);
  net.ScheduleTimer("a", 200, 2);
  net.Run(1'000);
  EXPECT_EQ(a.timers, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(SimNetTest, RunStopsAtDeadline) {
  SimNetwork net(4, 50, 50);
  Recorder a("a"), b("b");
  net.AddActor(&a);
  net.AddActor(&b);
  net.Send("a", "b", "t", StrBytes("early"));
  net.ScheduleTimer("a", 5'000, 9);
  SimTime end = net.Run(1'000);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(a.timers.empty());  // beyond the deadline
  EXPECT_LE(end, 1'000u);
}

TEST(SimNetTest, RejectsBadConfig) {
  EXPECT_THROW(SimNetwork(1, 100, 50), std::invalid_argument);
  SimNetwork net(1);
  Recorder a("a");
  net.AddActor(&a);
  Recorder a2("a");
  EXPECT_THROW(net.AddActor(&a2), std::invalid_argument);
  EXPECT_THROW(net.AddActor(nullptr), std::invalid_argument);
  EXPECT_THROW(net.ScheduleTimer("nobody", 1, 1), std::invalid_argument);
}

TEST(SimNetTest, UnknownRecipientDropsInsteadOfThrowing) {
  SimNetwork net(5, 10, 20);
  Recorder a("a"), b("b");
  net.AddActor(&a);
  net.AddActor(&b);
  // A send to an unknown recipient is tolerated (the target may be external
  // to the simulation) and accounted as a drop, consistent with Run's
  // missing-target policy.
  net.Send("a", "nobody", "t", StrBytes("lost"));
  net.Send("a", "b", "t", StrBytes("kept"));
  net.Broadcast("a", "t2", StrBytes("wide"));
  net.Run(1'000);
  EXPECT_EQ(net.Stats().messages_dropped, 1u);
  EXPECT_EQ(net.Stats().messages_delivered, 2u);  // "kept" + broadcast to b
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_TRUE(a.received.empty());
}

TEST(CertAnnouncementTest, RoundTripAndGarbage) {
  chain::BlockHeader hdr;
  hdr.height = 5;
  core::BlockCertificate cert;
  cert.pk_enc = crypto::SecretKey::FromSeed(StrBytes("k")).Public();
  cert.digest = hdr.Hash();
  Bytes wire = EncodeCertAnnouncement(hdr, cert);
  auto decoded = DecodeCertAnnouncement(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().first, hdr);
  EXPECT_EQ(decoded.value().second.digest, cert.digest);

  Bytes truncated(wire.begin(), wire.end() - 5);
  EXPECT_FALSE(DecodeCertAnnouncement(truncated).ok());
}

TEST(WorkflowTest, EndToEndOverLossyOrderingNetwork) {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);

  // Latency spread exceeding the block interval guarantees reordering.
  SimNetwork net(7, 1'000, 4'000'000);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;

  MinerActor miner("miner", config, registry, params, 4, 4, 1'000'000);
  FullNodeActor full_node("full", config, registry);
  CiActor ci("ci", config, registry);
  SuperlightActor client("client");
  net.AddActor(&miner);
  net.AddActor(&full_node);
  net.AddActor(&ci);
  net.AddActor(&client);

  net.Run(30'000'000);  // 30 virtual seconds ≈ 30 blocks

  EXPECT_GT(miner.BlocksProposed(), 10u);
  // Everything the full node and CI could order, they accepted.
  EXPECT_EQ(full_node.RejectedBlocks(), 0u);
  EXPECT_GT(ci.CertsIssued(), 10u);
  // The client followed the chain purely from certificates; anything it
  // declined was stale (reordered), never invalid.
  EXPECT_GT(client.Client().Height(), 0u);
  EXPECT_LE(client.Client().Height(), ci.Issuer().Node().Height());
  EXPECT_EQ(client.RejectedInvalid(), 0u);
  // Reordering means the client may skip heights, so it accepts at most one
  // certificate per height it ends up at.
  EXPECT_GE(client.Accepted(), 1u);
  EXPECT_LE(client.Accepted(), client.Client().Height());
  // Certificates verified the IAS report only once.
  EXPECT_EQ(client.Client().ReportVerifications(), 1u);
}

TEST(WorkflowTest, QueryProtocolOverTheWire) {
  // Miner + SP + a querying client: the SP builds the historical index from
  // (possibly reordered) block gossip and serves window queries over the
  // network; the client verifies the serialized proof against the index
  // digest. (Digest certification itself is covered by query_test — here the
  // digest stands in for a certified one.)
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  SimNetwork net(11, 1'000, 500'000);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;
  params.kv_keys = 5;

  MinerActor miner("miner", config, registry, params, 4, 4, 1'000'000);
  SpActor sp("sp");

  // A lightweight inline client actor issuing one query and verifying the
  // reply.
  struct QueryClient final : Actor {
    std::string Name() const override { return "qclient"; }
    void OnStart(SimNetwork& n) override {
      n.ScheduleTimer("qclient", 12'000'000, 1);  // query after ~10 blocks
    }
    void OnTimer(SimNetwork& n, std::uint64_t) override {
      n.Send("qclient", "sp", kTopicQuery, EncodeHistoricalQuery(42, 1, 1, 8));
    }
    void OnMessage(SimNetwork& n, const Message& msg) override {
      (void)n;
      if (msg.topic != kTopicQueryReply) return;
      auto reply = DecodeHistoricalReply(msg.payload);
      ASSERT_TRUE(reply.ok()) << reply.message();
      EXPECT_EQ(reply.value().first, 42u);
      received_proof = true;
      proof = std::move(reply.value().second);
    }
    bool received_proof = false;
    query::HistoricalQueryProof proof;
  } qclient;

  net.AddActor(&miner);
  net.AddActor(&sp);
  net.AddActor(&qclient);
  net.Run(20'000'000);

  ASSERT_TRUE(qclient.received_proof);
  EXPECT_EQ(sp.QueriesServed(), 1u);
  // Verify against the SP's digest (the proof crossed the wire serialized).
  auto result = query::HistoricalIndex::VerifyQuery(
      sp.Index()->CurrentDigest(), 1, 1, 8, qclient.proof);
  // The SP answered with its index state at reply time; it may have indexed
  // more blocks since, in which case the digest moved — re-query locally to
  // confirm verifiability of a fresh proof either way.
  if (!result.ok()) {
    auto fresh = sp.Index()->Query(1, 1, 8);
    auto fresh_result = query::HistoricalIndex::VerifyQuery(
        sp.Index()->CurrentDigest(), 1, 1, 8, fresh);
    ASSERT_TRUE(fresh_result.ok()) << fresh_result.message();
  }
}

TEST(WorkflowTest, ClientIgnoresUncertifiedBlocks) {
  // A client that only sees raw block announcements never advances — only
  // certificates move a superlight client.
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  SimNetwork net(8, 10, 20);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kDoNothing;
  params.instances_per_workload = 1;
  MinerActor miner("miner", config, registry, params, 2, 1, 100'000);
  SuperlightActor client("client");
  net.AddActor(&miner);
  net.AddActor(&client);
  net.Run(2'000'000);
  EXPECT_GT(miner.BlocksProposed(), 5u);
  EXPECT_EQ(client.Client().Height(), 0u);
  EXPECT_FALSE(client.Client().HasState());
}

}  // namespace
}  // namespace dcert::net
