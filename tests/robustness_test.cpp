// Robustness: every wire format must survive adversarial bytes — random
// truncations and bit flips either fail cleanly (error Result) or decode to
// something self-consistent; they must never crash or hang. Plus negative
// paths of the trusted index-certification entry points driven directly.
#include <gtest/gtest.h>

#include "chain/block.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "dcert/certificate.h"
#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "dcert/update_proof.h"
#include "mht/inverted_index.h"
#include "mht/mbtree.h"
#include "mht/mpt.h"
#include "mht/skiplist.h"
#include "mht/smt.h"
#include "query/historical_index.h"
#include "query/lineage_index.h"
#include "workloads/workloads.h"

namespace dcert {
namespace {

/// Applies `rounds` random mutations (flip / truncate / extend) and feeds
/// each mutant to `decode`, which must not crash.
template <typename DecodeFn>
void FuzzDecoder(const Bytes& genuine, DecodeFn decode, std::uint64_t seed,
                 int rounds = 200) {
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    Bytes mutant = genuine;
    switch (rng.NextBelow(3)) {
      case 0: {  // bit flip(s)
        if (mutant.empty()) break;
        int flips = static_cast<int>(rng.NextRange(1, 4));
        for (int f = 0; f < flips; ++f) {
          mutant[rng.NextBelow(mutant.size())] ^=
              static_cast<std::uint8_t>(1u << rng.NextBelow(8));
        }
        break;
      }
      case 1:  // truncate
        mutant.resize(rng.NextBelow(mutant.size() + 1));
        break;
      default: {  // extend with garbage
        Bytes extra = rng.NextBytes(rng.NextRange(1, 16));
        mutant.insert(mutant.end(), extra.begin(), extra.end());
        break;
      }
    }
    decode(mutant);  // must not crash; outcome is irrelevant
  }
}

workloads::AccountPool& Pool() {
  static workloads::AccountPool pool(4, 3001);
  return pool;
}

chain::Block SampleBlock() {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  chain::FullNode node(config, registry);
  chain::Miner miner(node);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;
  workloads::WorkloadGenerator gen(params, Pool());
  auto block = miner.MineBlock(gen.NextBlockTxs(5), 100);
  return block.value();
}

TEST(WireFuzzTest, BlockAndHeader) {
  chain::Block blk = SampleBlock();
  FuzzDecoder(blk.Serialize(),
              [](const Bytes& b) { (void)chain::Block::Deserialize(b); }, 1);
  FuzzDecoder(blk.header.Serialize(),
              [](const Bytes& b) { (void)chain::BlockHeader::Deserialize(b); }, 2);
  FuzzDecoder(blk.txs[0].Serialize(),
              [](const Bytes& b) { (void)chain::Transaction::Deserialize(b); }, 3);
}

TEST(WireFuzzTest, Certificate) {
  core::BlockCertificate cert;
  cert.pk_enc = crypto::SecretKey::FromSeed(StrBytes("f")).Public();
  cert.digest = crypto::Sha256::Digest(StrBytes("d"));
  cert.sig = crypto::SecretKey::FromSeed(StrBytes("f")).Sign(cert.digest);
  sgxsim::Enclave enclave("p", "1");
  cert.report = sgxsim::AttestationService::Attest(enclave.MakeQuote(cert.digest));
  FuzzDecoder(cert.Serialize(),
              [](const Bytes& b) { (void)core::BlockCertificate::Deserialize(b); },
              4);
}

TEST(WireFuzzTest, MerkleProofs) {
  mht::SparseMerkleTree smt;
  for (int i = 0; i < 30; ++i) {
    smt.Update(crypto::Sha256::Digest(StrBytes("k" + std::to_string(i))),
               crypto::Sha256::Digest(StrBytes("v" + std::to_string(i))));
  }
  auto smt_proof = smt.ProveKeys({crypto::Sha256::Digest(StrBytes("k1"))});
  FuzzDecoder(smt_proof.Serialize(),
              [](const Bytes& b) { (void)mht::SmtMultiProof::Deserialize(b); }, 5);

  mht::MbTree mb;
  for (std::uint64_t k = 1; k <= 40; ++k) mb.Insert(k, StrBytes("v"));
  FuzzDecoder(mb.RangeQueryWithProof(5, 15).Serialize(),
              [](const Bytes& b) { (void)mht::MbRangeProof::Deserialize(b); }, 6);
  FuzzDecoder(mb.ProveAppend().Serialize(),
              [](const Bytes& b) { (void)mht::MbAppendProof::Deserialize(b); }, 7);

  mht::MptTrie mpt;
  for (int i = 0; i < 20; ++i) {
    mpt.Put(crypto::Sha256::Digest(StrBytes("a" + std::to_string(i))),
            crypto::Sha256::Digest(StrBytes("r")));
  }
  FuzzDecoder(mpt.Prove(crypto::Sha256::Digest(StrBytes("a3"))).Serialize(),
              [](const Bytes& b) { (void)mht::MptProof::Deserialize(b); }, 8);

  mht::AuthSkipList list;
  for (std::uint64_t t = 1; t <= 40; ++t) list.Append(t, StrBytes("v"));
  FuzzDecoder(list.QueryWithProof(10, 20).Serialize(),
              [](const Bytes& b) { (void)mht::SkipRangeProof::Deserialize(b); }, 9);
}

TEST(WireFuzzTest, QueryProofs) {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  chain::FullNode node(config, registry);
  chain::Miner miner(node);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;
  params.kv_keys = 5;
  workloads::AccountPool pool(4, 3002);
  workloads::WorkloadGenerator gen(params, pool);

  query::HistoricalIndex hist;
  query::LineageIndex lineage;
  mht::InvertedIndex inverted;
  for (int i = 0; i < 5; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(5), 100 + i);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(node.SubmitBlock(block.value()).ok());
    hist.ApplyBlockCapturingAux(block.value());
    lineage.ApplyBlockCapturingAux(block.value());
    inverted.ApplyWrites(query::ExtractKeywordWrites(block.value()));
  }

  FuzzDecoder(hist.Query(1, 1, 5).Serialize(),
              [](const Bytes& b) { (void)query::HistoricalQueryProof::Deserialize(b); },
              10);
  FuzzDecoder(lineage.Query(1, 1, 5).Serialize(),
              [](const Bytes& b) { (void)query::LineageQueryProof::Deserialize(b); },
              11);
  FuzzDecoder(inverted.QueryConjunctive({"c3000"}).Serialize(),
              [](const Bytes& b) { (void)mht::KeywordQueryProof::Deserialize(b); },
              12);
}

TEST(WireFuzzTest, StateUpdateProof) {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  chain::FullNode node(config, registry);
  chain::Block blk = SampleBlock();
  auto exec = chain::ExecuteBlockTxs(blk.txs, *registry, node.State());
  ASSERT_TRUE(exec.ok());
  core::StateUpdateProof proof = core::BuildStateUpdateProof(
      exec.value().reads, exec.value().writes, node.State());
  Bytes wire = proof.Serialize();
  auto decoded = core::StateUpdateProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().read_set, proof.read_set);
  FuzzDecoder(wire,
              [](const Bytes& b) { (void)core::StateUpdateProof::Deserialize(b); },
              13);
}

TEST(RobustnessTest, CpuBombTransactionReverts) {
  // A transaction demanding more compute than the step limit reverts without
  // invalidating the block (DoS resistance of the executor — and of the
  // enclave replay, which uses the same limit).
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  chain::FullNode node(config, registry);
  workloads::AccountPool pool(1, 3003);
  std::uint64_t cpu = workloads::ContractId(workloads::Workload::kCpuHeavy, 0);
  std::vector<chain::Transaction> txs{
      pool.MakeTx(0, cpu, {1'000'000'000'000ull})};  // absurd iteration count
  auto result = chain::ExecuteBlockTxs(txs, *registry, node.State());
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_FALSE(result.value().receipts[0].success);
  EXPECT_EQ(result.value().receipts[0].error, "step limit exceeded");
}

TEST(RobustnessTest, SuperlightIndexCertNegatives) {
  using core::CertificateIssuer;
  using core::ExpectedEnclaveMeasurement;
  using core::SuperlightClient;
  // Genuine chain + hierarchical index cert setup.
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  CertificateIssuer ci(config, registry);
  auto index = std::make_shared<query::HistoricalIndex>();
  ci.AttachIndex(index);
  chain::FullNode node(config, registry);
  chain::Miner miner(node);
  workloads::WorkloadGenerator::Params params;
  params.kind = workloads::Workload::kKvStore;
  params.instances_per_workload = 1;
  workloads::AccountPool pool(4, 3004);
  workloads::WorkloadGenerator gen(params, pool);

  auto block = miner.MineBlock(gen.NextBlockTxs(4), 100);
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(node.SubmitBlock(block.value()).ok());
  auto certs = ci.ProcessBlockHierarchical(block.value());
  ASSERT_TRUE(certs.ok());

  SuperlightClient client(ExpectedEnclaveMeasurement());
  ASSERT_TRUE(client.ValidateAndAccept(block.value().header, *ci.LatestCert()).ok());

  // Wrong digest claimed for a valid certificate: rejected.
  Hash256 wrong_digest = index->CurrentDigest();
  wrong_digest[0] ^= 1;
  EXPECT_FALSE(client
                   .AcceptIndexCert(block.value().header, certs.value()[0],
                                    wrong_digest, index->Id())
                   .ok());
  // Block certificate passed off as an index certificate: rejected (digest
  // shape differs).
  EXPECT_FALSE(client
                   .AcceptIndexCert(block.value().header, *ci.LatestCert(),
                                    index->CurrentDigest(), index->Id())
                   .ok());
  // The genuine binding is accepted.
  EXPECT_TRUE(client
                  .AcceptIndexCert(block.value().header, certs.value()[0],
                                   index->CurrentDigest(), index->Id())
                  .ok());
  EXPECT_EQ(client.CertifiedIndexDigest(index->Id()), index->CurrentDigest());
}

}  // namespace
}  // namespace dcert
