// Authenticated skip list (LineageChain baseline): queries and appends.
#include "mht/skiplist.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace dcert::mht {
namespace {

Bytes Val(std::uint64_t ts) { return StrBytes("v@" + std::to_string(ts)); }

AuthSkipList Build(std::uint64_t n) {
  AuthSkipList list;
  for (std::uint64_t ts = 1; ts <= n; ++ts) list.Append(ts, Val(ts));
  return list;
}

TEST(SkipListTest, HeightDeterministic) {
  EXPECT_EQ(AuthSkipList::HeightOf(0), 1);   // i+1 = 1
  EXPECT_EQ(AuthSkipList::HeightOf(1), 2);   // i+1 = 2
  EXPECT_EQ(AuthSkipList::HeightOf(2), 1);   // i+1 = 3
  EXPECT_EQ(AuthSkipList::HeightOf(3), 3);   // i+1 = 4
  EXPECT_EQ(AuthSkipList::HeightOf(7), 4);   // i+1 = 8
  EXPECT_EQ(AuthSkipList::HeightOf((1ull << 40) - 1), AuthSkipList::kMaxLevel);
}

TEST(SkipListTest, EmptyList) {
  AuthSkipList list;
  EXPECT_TRUE(list.Digest().IsZero());
  EXPECT_EQ(list.Size(), 0u);
  SkipRangeProof proof = list.QueryWithProof(1, 10);
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 1, 10, proof);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results.value().empty());
  EXPECT_THROW(list.HeadRecord(), std::logic_error);
}

TEST(SkipListTest, AppendRejectsDecreasingTimestamps) {
  AuthSkipList list;
  list.Append(10, Val(10));
  EXPECT_THROW(list.Append(9, Val(9)), std::invalid_argument);
  list.Append(10, Val(10));  // equal is fine
}

TEST(SkipListTest, FullWindowQuery) {
  AuthSkipList list = Build(20);
  SkipRangeProof proof = list.QueryWithProof(1, 20);
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 1, 20, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  ASSERT_EQ(results.value().size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(results.value()[i].timestamp, i + 1);
    EXPECT_EQ(results.value()[i].value, Val(i + 1));
  }
}

TEST(SkipListTest, DistantWindowUsesJumps) {
  AuthSkipList list = Build(1000);
  SkipRangeProof proof = list.QueryWithProof(100, 105);
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 100, 105, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  ASSERT_EQ(results.value().size(), 6u);
  EXPECT_EQ(results.value().front().timestamp, 100u);
  EXPECT_EQ(results.value().back().timestamp, 105u);
  // The seek phase must use tower jumps, not 900 single steps.
  EXPECT_LT(proof.visited.size(), 100u);
}

TEST(SkipListTest, WindowBeyondNewestReturnsEmpty) {
  AuthSkipList list = Build(10);
  SkipRangeProof proof = list.QueryWithProof(100, 200);
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 100, 200, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_TRUE(results.value().empty());
}

TEST(SkipListTest, WindowBeforeOldestReturnsEmpty) {
  AuthSkipList list;
  for (std::uint64_t ts = 100; ts <= 110; ++ts) list.Append(ts, Val(ts));
  SkipRangeProof proof = list.QueryWithProof(1, 50);
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 1, 50, proof);
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_TRUE(results.value().empty());
}

TEST(SkipListTest, TamperedValueRejected) {
  AuthSkipList list = Build(50);
  SkipRangeProof proof = list.QueryWithProof(10, 15);
  bool mutated = false;
  for (auto& rec : proof.visited) {
    if (rec.value) {
      (*rec.value)[0] ^= 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(AuthSkipList::VerifyQuery(list.Digest(), 10, 15, proof).ok());
}

TEST(SkipListTest, DroppedResultRejected) {
  AuthSkipList list = Build(50);
  SkipRangeProof proof = list.QueryWithProof(10, 15);
  // Remove one in-range record: the traversal chain breaks.
  for (std::size_t i = 0; i < proof.visited.size(); ++i) {
    if (proof.visited[i].value) {
      proof.visited.erase(proof.visited.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  EXPECT_FALSE(AuthSkipList::VerifyQuery(list.Digest(), 10, 15, proof).ok());
}

TEST(SkipListTest, WrongDigestRejected) {
  AuthSkipList list = Build(30);
  SkipRangeProof proof = list.QueryWithProof(5, 10);
  Hash256 wrong = list.Digest();
  wrong[2] ^= 1;
  EXPECT_FALSE(AuthSkipList::VerifyQuery(wrong, 5, 10, proof).ok());
}

TEST(SkipListTest, TamperedTimestampRejected) {
  AuthSkipList list = Build(30);
  SkipRangeProof proof = list.QueryWithProof(5, 10);
  ASSERT_FALSE(proof.visited.empty());
  proof.visited[0].timestamp += 1;
  EXPECT_FALSE(AuthSkipList::VerifyQuery(list.Digest(), 5, 10, proof).ok());
}

TEST(SkipListTest, ApplyAppendMatchesInMemoryAppend) {
  AuthSkipList list;
  Hash256 digest;  // zero = empty
  for (std::uint64_t ts = 1; ts <= 64; ++ts) {
    std::optional<SkipNodeRecord> head;
    if (list.Size() > 0) head = list.HeadRecord();
    Bytes value = Val(ts);
    auto predicted = AuthSkipList::ApplyAppend(digest, head, ts,
                                               crypto::Sha256::Digest(value));
    ASSERT_TRUE(predicted.ok()) << "ts=" << ts << ": " << predicted.message();
    list.Append(ts, value);
    EXPECT_EQ(predicted.value(), list.Digest()) << "ts=" << ts;
    digest = predicted.value();
  }
}

TEST(SkipListTest, ApplyAppendRejectsBadInputs) {
  AuthSkipList list = Build(10);
  SkipNodeRecord head = list.HeadRecord();
  Hash256 vh = crypto::Sha256::Digest(Val(11));
  // Wrong digest.
  Hash256 wrong = list.Digest();
  wrong[0] ^= 1;
  EXPECT_FALSE(AuthSkipList::ApplyAppend(wrong, head, 11, vh).ok());
  // Decreasing timestamp.
  EXPECT_FALSE(AuthSkipList::ApplyAppend(list.Digest(), head, 5, vh).ok());
  // Missing head on non-empty list.
  EXPECT_FALSE(AuthSkipList::ApplyAppend(list.Digest(), std::nullopt, 11, vh).ok());
  // Tampered head record.
  SkipNodeRecord bad = head;
  bad.timestamp += 1;
  EXPECT_FALSE(AuthSkipList::ApplyAppend(list.Digest(), bad, 11, vh).ok());
}

TEST(SkipListTest, ProofSerializationRoundTrip) {
  AuthSkipList list = Build(100);
  SkipRangeProof proof = list.QueryWithProof(40, 50);
  Bytes wire = proof.Serialize();
  auto decoded = SkipRangeProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok());
  auto results = AuthSkipList::VerifyQuery(list.Digest(), 40, 50, decoded.value());
  ASSERT_TRUE(results.ok()) << results.message();
  EXPECT_EQ(results.value().size(), 11u);

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(SkipRangeProof::Deserialize(truncated).ok());
}

// Property sweep: random windows over lists of several sizes return exactly
// the expected timestamps.
class SkipListSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkipListSweep, RandomWindowsComplete) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  AuthSkipList list = Build(n);
  Rng rng(n);
  for (int trial = 0; trial < 15; ++trial) {
    std::uint64_t lo = rng.NextRange(0, n + 3);
    std::uint64_t hi = rng.NextRange(lo, n + 3);
    auto res = AuthSkipList::VerifyQuery(list.Digest(), lo, hi,
                                         list.QueryWithProof(lo, hi));
    ASSERT_TRUE(res.ok()) << "n=" << n << " [" << lo << "," << hi
                          << "]: " << res.message();
    std::vector<std::uint64_t> expected;
    for (std::uint64_t t = std::max<std::uint64_t>(lo, 1); t <= std::min(hi, n); ++t) {
      expected.push_back(t);
    }
    ASSERT_EQ(res.value().size(), expected.size()) << "[" << lo << "," << hi << "]";
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(res.value()[i].timestamp, expected[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkipListSweep,
                         ::testing::Values(1, 2, 3, 8, 31, 32, 33, 100, 1000));

}  // namespace
}  // namespace dcert::mht
