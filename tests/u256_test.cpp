// Unit + property tests for the 256-bit integer and modular arithmetic.
#include "crypto/u256.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/secp256k1.h"

namespace dcert::crypto {
namespace {

U256 RandomU256(Rng& rng) {
  return U256(rng.NextU64(), rng.NextU64(), rng.NextU64(), rng.NextU64());
}

TEST(U256Test, HexRoundTrip) {
  U256 v = U256::FromHex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.ToHex(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(U256::FromHex("ff"), U256(255));
  EXPECT_EQ(U256(0).ToHex(), std::string(64, '0'));
}

TEST(U256Test, BytesBigEndianLayout) {
  U256 one(1);
  Bytes b = one.ToBytesBE();
  EXPECT_EQ(b[31], 1);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(U256::FromBytesBE(b), one);
}

TEST(U256Test, ComparisonAcrossLimbs) {
  U256 lo(0xffffffffffffffffULL, 0, 0, 0);
  U256 hi(0, 1, 0, 0);
  EXPECT_LT(lo, hi);
  EXPECT_GT(hi, lo);
  EXPECT_EQ(lo, lo);
}

TEST(U256Test, AddCarryPropagation) {
  U256 all_ones = U256::FromHex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  std::uint64_t carry = 0;
  U256 sum = Add(all_ones, U256(1), carry);
  EXPECT_TRUE(sum.IsZero());
  EXPECT_EQ(carry, 1u);
}

TEST(U256Test, SubBorrowPropagation) {
  std::uint64_t borrow = 0;
  U256 diff = Sub(U256(0), U256(1), borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(diff.ToHex(),
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
}

TEST(U256Test, AddSubInverse) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    U256 a = RandomU256(rng);
    U256 b = RandomU256(rng);
    std::uint64_t carry = 0, borrow = 0;
    U256 sum = Add(a, b, carry);
    U256 back = Sub(sum, b, borrow);
    // carry and borrow cancel: (a + b) - b == a exactly mod 2^256.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256Test, MulSmallValues) {
  U512 p = Mul(U256(6), U256(7));
  EXPECT_EQ(p.Lo(), U256(42));
  EXPECT_TRUE(p.HiIsZero());
}

TEST(U256Test, MulMaxValues) {
  U256 max = U256::FromHex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  // (2^256-1)^2 = 2^512 - 2^257 + 1 -> lo = 1, hi = 2^256 - 2.
  U512 p = Mul(max, max);
  EXPECT_EQ(p.Lo(), U256(1));
  EXPECT_EQ(p.Hi().ToHex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe");
}

TEST(U256Test, MulCommutes) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomU256(rng);
    U256 b = RandomU256(rng);
    U512 ab = Mul(a, b);
    U512 ba = Mul(b, a);
    EXPECT_EQ(ab.limbs, ba.limbs);
  }
}

TEST(U256Test, ShrMatchesBitDefinition) {
  U256 v = U256::FromHex(
      "8000000000000000000000000000000000000000000000000000000000000001");
  EXPECT_EQ(Shr(v, 0), v);
  EXPECT_EQ(Shr(v, 1).ToHex(),
            "4000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(Shr(v, 255), U256(1));
  EXPECT_TRUE(Shr(v, 256).IsZero());
}

TEST(U256Test, BitIndexing) {
  U256 v(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(255));
}

class ModArithTest : public ::testing::Test {
 protected:
  const ModArith& fp_ = Curve().Fp();
  const ModArith& fn_ = Curve().Fn();
};

TEST_F(ModArithTest, RejectsWrongCofactor) {
  EXPECT_THROW(ModArith(Curve().P(), U256(1)), std::invalid_argument);
}

TEST_F(ModArithTest, ReduceIdentityBelowModulus) {
  EXPECT_EQ(fp_.Reduce(U256(12345)), U256(12345));
}

TEST_F(ModArithTest, ReduceAboveModulus) {
  std::uint64_t carry = 0;
  U256 above = Add(Curve().P(), U256(5), carry);
  ASSERT_EQ(carry, 0u);
  EXPECT_EQ(fp_.Reduce(above), U256(5));
}

TEST_F(ModArithTest, AddWrapsAroundModulus) {
  std::uint64_t borrow = 0;
  U256 p_minus_1 = Sub(Curve().P(), U256(1), borrow);
  EXPECT_EQ(fp_.Add(p_minus_1, U256(1)), U256(0));
  EXPECT_EQ(fp_.Add(p_minus_1, U256(3)), U256(2));
}

TEST_F(ModArithTest, SubWrapsBelowZero) {
  std::uint64_t borrow = 0;
  U256 p_minus_2 = Sub(Curve().P(), U256(2), borrow);
  EXPECT_EQ(fp_.Sub(U256(1), U256(3)), p_minus_2);
}

TEST_F(ModArithTest, NegIsAdditiveInverse) {
  Rng rng(44);
  for (int i = 0; i < 100; ++i) {
    U256 a = fp_.Reduce(RandomU256(rng));
    EXPECT_TRUE(fp_.Add(a, fp_.Neg(a)).IsZero());
  }
  EXPECT_TRUE(fp_.Neg(U256(0)).IsZero());
}

TEST_F(ModArithTest, MulDistributesOverAdd) {
  Rng rng(45);
  for (int i = 0; i < 100; ++i) {
    U256 a = fp_.Reduce(RandomU256(rng));
    U256 b = fp_.Reduce(RandomU256(rng));
    U256 c = fp_.Reduce(RandomU256(rng));
    EXPECT_EQ(fp_.Mul(a, fp_.Add(b, c)), fp_.Add(fp_.Mul(a, b), fp_.Mul(a, c)));
  }
}

TEST_F(ModArithTest, MulAssociates) {
  Rng rng(46);
  for (int i = 0; i < 50; ++i) {
    U256 a = fn_.Reduce(RandomU256(rng));
    U256 b = fn_.Reduce(RandomU256(rng));
    U256 c = fn_.Reduce(RandomU256(rng));
    EXPECT_EQ(fn_.Mul(fn_.Mul(a, b), c), fn_.Mul(a, fn_.Mul(b, c)));
  }
}

TEST_F(ModArithTest, InvIsMultiplicativeInverse) {
  Rng rng(47);
  for (int i = 0; i < 20; ++i) {
    U256 a = fp_.Reduce(RandomU256(rng));
    if (a.IsZero()) continue;
    EXPECT_EQ(fp_.Mul(a, fp_.Inv(a)), U256(1));
  }
  // Also over the (prime) group order.
  U256 a = fn_.Reduce(RandomU256(rng));
  EXPECT_EQ(fn_.Mul(a, fn_.Inv(a)), U256(1));
  EXPECT_THROW(fp_.Inv(U256(0)), std::invalid_argument);
}

TEST_F(ModArithTest, PowMatchesRepeatedMul) {
  U256 base(3);
  U256 acc(1);
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(fp_.Pow(base, U256(static_cast<std::uint64_t>(e))), acc);
    acc = fp_.Mul(acc, base);
  }
}

TEST_F(ModArithTest, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for a != 0.
  Rng rng(48);
  std::uint64_t borrow = 0;
  U256 p_minus_1 = Sub(Curve().P(), U256(1), borrow);
  U256 a = fp_.Reduce(RandomU256(rng));
  EXPECT_EQ(fp_.Pow(a, p_minus_1), U256(1));
}

TEST_F(ModArithTest, Reduce512LargeProduct) {
  // Verify hi*2^256 + lo ≡ Reduce512 by checking (a*b) mod p consistency:
  // ((a mod p) * (b mod p)) mod p computed two ways.
  Rng rng(49);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomU256(rng);
    U256 b = RandomU256(rng);
    U256 direct = fp_.Reduce512(Mul(a, b));
    U256 via_reduced = fp_.Mul(fp_.Reduce(a), fp_.Reduce(b));
    EXPECT_EQ(direct, via_reduced);
  }
}

}  // namespace
}  // namespace dcert::crypto
