// Decentralization scenarios: multiple CIs extending one certificate chain,
// clients switching CIs, forks under the chain-selection rule, and CI
// restart from a sealed signing key.
#include <gtest/gtest.h>

#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

namespace dcert::core {
namespace {

using workloads::AccountPool;
using workloads::Workload;
using workloads::WorkloadGenerator;

struct MultiRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 66};
  std::unique_ptr<WorkloadGenerator> gen;

  MultiRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    WorkloadGenerator::Params params;
    params.kind = Workload::kKvStore;
    params.instances_per_workload = 1;
    gen = std::make_unique<WorkloadGenerator>(params, pool);
  }

  chain::Block NextBlock() {
    auto block = miner->MineBlock(gen->NextBlockTxs(4), 100 + miner_node->Height());
    if (!block.ok()) throw std::runtime_error(block.message());
    if (!miner_node->SubmitBlock(block.value())) throw std::runtime_error("submit");
    return block.value();
  }
};

TEST(MultiCiTest, TwoCisAlternateOnOneCertificateChain) {
  MultiRig rig;
  CertificateIssuer ci_a(rig.config, rig.registry, {}, "ci-a-key");
  CertificateIssuer ci_b(rig.config, rig.registry, {}, "ci-b-key");
  ASSERT_NE(ci_a.EnclaveKey(), ci_b.EnclaveKey());

  SuperlightClient client(ExpectedEnclaveMeasurement());
  for (int i = 0; i < 6; ++i) {
    chain::Block blk = rig.NextBlock();
    CertificateIssuer& active = (i % 2 == 0) ? ci_a : ci_b;
    CertificateIssuer& passive = (i % 2 == 0) ? ci_b : ci_a;
    auto cert = active.ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << "block " << i << ": " << cert.message();
    // The passive CI adopts the foreign certificate and continues from it.
    ASSERT_TRUE(passive.AcceptBlockWithCert(blk, cert.value()).ok()) << i;
    // The client accepts certificates from either CI (same measurement).
    ASSERT_TRUE(client.ValidateAndAccept(blk.header, cert.value()).ok()) << i;
  }
  EXPECT_EQ(client.Height(), 6u);
  // Switching CIs re-verifies the attestation report once per enclave key
  // (Sec. 4.3: "only if the superlight client switches to ... another CI").
  EXPECT_EQ(client.ReportVerifications(), 2u);
}

TEST(MultiCiTest, AcceptBlockWithCertRejectsBadInputs) {
  MultiRig rig;
  CertificateIssuer ci_a(rig.config, rig.registry, {}, "ci-a-key");
  CertificateIssuer ci_b(rig.config, rig.registry, {}, "ci-b-key");
  chain::Block blk = rig.NextBlock();
  auto cert = ci_a.ProcessBlock(blk);
  ASSERT_TRUE(cert.ok());

  // Certificate for a different block.
  chain::Block blk2 = rig.NextBlock();
  EXPECT_FALSE(ci_b.AcceptBlockWithCert(blk2, cert.value()).ok());

  // Tampered signature.
  BlockCertificate bad = cert.value();
  bad.sig.s = crypto::Curve().Fn().Add(bad.sig.s, crypto::U256(1));
  EXPECT_FALSE(ci_b.AcceptBlockWithCert(blk, bad).ok());

  // Valid adoption still works afterwards.
  EXPECT_TRUE(ci_b.AcceptBlockWithCert(blk, cert.value()).ok());
}

TEST(MultiCiTest, ForkResolutionByChainSelection) {
  // Two competing forks certified by two CIs; the client converges on the
  // longest chain regardless of arrival order.
  MultiRig shared;
  chain::Block common = shared.NextBlock();

  // Fork A: 1 extra block; fork B: 2 extra blocks.
  CertificateIssuer ci_a(shared.config, shared.registry, {}, "fork-a");
  CertificateIssuer ci_b(shared.config, shared.registry, {}, "fork-b");
  auto cert_common_a = ci_a.ProcessBlock(common);
  auto cert_common_b = ci_b.ProcessBlock(common);
  ASSERT_TRUE(cert_common_a.ok() && cert_common_b.ok());

  // Build fork A on a dedicated miner node.
  chain::FullNode node_a(shared.config, shared.registry);
  ASSERT_TRUE(node_a.SubmitBlock(common).ok());
  chain::Miner miner_a(node_a);
  AccountPool pool_a(2, 700);
  WorkloadGenerator::Params pa;
  pa.kind = Workload::kDoNothing;
  pa.instances_per_workload = 1;
  WorkloadGenerator gen_a(pa, pool_a);
  auto a1 = miner_a.MineBlock(gen_a.NextBlockTxs(1), 500);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(node_a.SubmitBlock(a1.value()).ok());
  auto cert_a1 = ci_a.ProcessBlock(a1.value());
  ASSERT_TRUE(cert_a1.ok()) << cert_a1.message();

  // Fork B: two blocks, different contents.
  chain::FullNode node_b(shared.config, shared.registry);
  ASSERT_TRUE(node_b.SubmitBlock(common).ok());
  chain::Miner miner_b(node_b);
  AccountPool pool_b(2, 800);
  WorkloadGenerator gen_b(pa, pool_b);
  auto b1 = miner_b.MineBlock(gen_b.NextBlockTxs(2), 600);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(node_b.SubmitBlock(b1.value()).ok());
  auto cert_b1 = ci_b.ProcessBlock(b1.value());
  ASSERT_TRUE(cert_b1.ok());
  auto b2 = miner_b.MineBlock(gen_b.NextBlockTxs(1), 601);
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(node_b.SubmitBlock(b2.value()).ok());
  auto cert_b2 = ci_b.ProcessBlock(b2.value());
  ASSERT_TRUE(cert_b2.ok());

  // Forks really diverge at the same height.
  ASSERT_NE(a1.value().header.Hash(), b1.value().header.Hash());
  ASSERT_EQ(a1.value().header.height, b1.value().header.height);

  // Client sees fork B's tip first, then fork A's shorter tip: A is rejected
  // by the longest-chain rule even though its certificate is valid.
  SuperlightClient client(ExpectedEnclaveMeasurement());
  ASSERT_TRUE(client.ValidateAndAccept(b2.value().header, cert_b2.value()).ok());
  EXPECT_FALSE(client.ValidateAndAccept(a1.value().header, cert_a1.value()).ok());
  EXPECT_EQ(client.Height(), 3u);
  EXPECT_EQ(client.LatestHeader().Hash(), b2.value().header.Hash());

  // Opposite order: the client upgrades from the short fork to the long one.
  SuperlightClient late(ExpectedEnclaveMeasurement());
  ASSERT_TRUE(late.ValidateAndAccept(a1.value().header, cert_a1.value()).ok());
  ASSERT_TRUE(late.ValidateAndAccept(b2.value().header, cert_b2.value()).ok());
  EXPECT_EQ(late.LatestHeader().Hash(), b2.value().header.Hash());
}

TEST(SealedKeyTest, RestartResumesWithSamePk) {
  MultiRig rig;
  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(rig.config).header.Hash();
  ec.registry_digest = rig.registry->Digest();
  ec.difficulty_bits = rig.config.difficulty_bits;

  sgxsim::Enclave enclave(kEnclaveProgramName, kEnclaveProgramVersion);
  CertEnclaveProgram original(ec, rig.registry, StrBytes("persistent-key"));
  Bytes sealed = original.SealSigningKey(enclave);

  // "Restart": a fresh enclave instance of the same program unseals the key.
  sgxsim::Enclave restarted(kEnclaveProgramName, kEnclaveProgramVersion);
  auto resumed = CertEnclaveProgram::RestoreFromSealed(ec, rig.registry,
                                                       restarted, sealed);
  ASSERT_TRUE(resumed.ok()) << resumed.message();
  EXPECT_EQ(resumed.value().PublicKey(), original.PublicKey());

  // A different program version (different measurement) cannot unseal.
  sgxsim::Enclave other(kEnclaveProgramName, "2.0.0");
  EXPECT_FALSE(
      CertEnclaveProgram::RestoreFromSealed(ec, rig.registry, other, sealed).ok());

  // Tampered blob rejected.
  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(
      CertEnclaveProgram::RestoreFromSealed(ec, rig.registry, restarted, tampered)
          .ok());
}

TEST(SealedKeyTest, ScalarRoundTripAndValidation) {
  auto key = crypto::SecretKey::FromSeed(StrBytes("roundtrip"));
  auto restored = crypto::SecretKey::FromScalarBytes(key.ScalarBytes());
  EXPECT_EQ(restored.Public(), key.Public());

  Bytes zero(32, 0);
  EXPECT_THROW(crypto::SecretKey::FromScalarBytes(zero), std::invalid_argument);
  Bytes too_big = crypto::Curve().N().ToBytesBE();
  EXPECT_THROW(crypto::SecretKey::FromScalarBytes(too_big), std::invalid_argument);
  Bytes short_buf(31, 1);
  EXPECT_THROW(crypto::SecretKey::FromScalarBytes(short_buf), std::invalid_argument);
}

}  // namespace
}  // namespace dcert::core
