// Authenticated aggregation: MB-tree (count, sum) windows and the historical
// index's aggregate queries.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dcert/issuer.h"
#include "mht/mbtree.h"
#include "query/historical_index.h"
#include "workloads/workloads.h"

namespace dcert::mht {
namespace {

Bytes WordValue(std::uint64_t w) {
  Encoder enc;
  enc.U64(w);
  return enc.Take();
}

TEST(MbAggregateTest, ValueWordIsLe64Prefix) {
  EXPECT_EQ(MbValueWord(WordValue(0x1122334455667788ull)), 0x1122334455667788ull);
  EXPECT_EQ(MbValueWord({}), 0u);
  EXPECT_EQ(MbValueWord({0x05}), 5u);  // short values zero-extend
  Bytes long_value = WordValue(7);
  long_value.push_back(0xff);  // trailing bytes beyond 8 are ignored
  EXPECT_EQ(MbValueWord(long_value), 7u);
}

TEST(MbAggregateTest, TotalAggregateTracksInserts) {
  MbTree tree;
  EXPECT_EQ(tree.TotalAggregate(), MbAggregate{});
  std::uint64_t expected_sum = 0;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    tree.Insert(k, WordValue(k * 10));
    expected_sum += k * 10;
  }
  EXPECT_EQ(tree.TotalAggregate().count, 100u);
  EXPECT_EQ(tree.TotalAggregate().sum, expected_sum);
}

TEST(MbAggregateTest, WindowAggregateVerifies) {
  MbTree tree;
  for (std::uint64_t k = 1; k <= 200; ++k) tree.Insert(k, WordValue(k));
  MbRangeProof proof = tree.AggregateQueryWithProof(50, 149);
  auto agg = MbTree::VerifyAggregate(tree.Root(), 50, 149, proof);
  ASSERT_TRUE(agg.ok()) << agg.message();
  EXPECT_EQ(agg.value().count, 100u);
  EXPECT_EQ(agg.value().sum, (50ull + 149ull) * 100 / 2);
}

TEST(MbAggregateTest, AggregateProofIsSmallerThanRangeProof) {
  // Fully covered subtrees stay pruned, so a wide window's aggregate proof is
  // much smaller than the equivalent range proof.
  MbTree tree;
  for (std::uint64_t k = 1; k <= 2000; ++k) tree.Insert(k, WordValue(k));
  std::size_t agg_size = tree.AggregateQueryWithProof(100, 1900).Serialize().size();
  std::size_t range_size = tree.RangeQueryWithProof(100, 1900).Serialize().size();
  EXPECT_LT(agg_size * 10, range_size);
}

TEST(MbAggregateTest, EmptyWindowAndEmptyTree) {
  MbTree tree;
  auto empty_tree = MbTree::VerifyAggregate(tree.Root(), 1, 10,
                                            tree.AggregateQueryWithProof(1, 10));
  ASSERT_TRUE(empty_tree.ok());
  EXPECT_EQ(empty_tree.value(), MbAggregate{});

  for (std::uint64_t k = 10; k <= 20; ++k) tree.Insert(k, WordValue(k));
  auto empty_window = MbTree::VerifyAggregate(
      tree.Root(), 100, 200, tree.AggregateQueryWithProof(100, 200));
  ASSERT_TRUE(empty_window.ok()) << empty_window.message();
  EXPECT_EQ(empty_window.value(), MbAggregate{});
}

TEST(MbAggregateTest, TamperedAggregateRejected) {
  MbTree tree;
  for (std::uint64_t k = 1; k <= 300; ++k) tree.Insert(k, WordValue(k));
  MbRangeProof proof = tree.AggregateQueryWithProof(50, 250);

  // Inflating a pruned stub's sum breaks the parent hash.
  std::function<bool(MbProofNode*)> inflate = [&](MbProofNode* node) {
    if (node->is_leaf) return false;
    for (auto& c : node->children) {
      if (!c.node && c.min >= 50 && c.max <= 250) {
        c.agg.sum += 1000;
        return true;
      }
      if (c.node && inflate(c.node.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(inflate(proof.root.get()));
  EXPECT_FALSE(MbTree::VerifyAggregate(tree.Root(), 50, 250, proof).ok());
}

TEST(MbAggregateTest, LyingValueWordRejectedWhenValueShown) {
  MbTree tree;
  for (std::uint64_t k = 1; k <= 50; ++k) tree.Insert(k, WordValue(k));
  MbRangeProof proof = tree.AggregateQueryWithProof(10, 12);
  // Find an in-range entry (value shown) and lie about its word.
  std::function<bool(MbProofNode*)> lie = [&](MbProofNode* node) {
    if (node->is_leaf) {
      for (auto& e : node->entries) {
        if (e.value) {
          e.value_word += 5;
          return true;
        }
      }
      return false;
    }
    for (auto& c : node->children) {
      if (c.node && lie(c.node.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(lie(proof.root.get()));
  EXPECT_FALSE(MbTree::VerifyAggregate(tree.Root(), 10, 12, proof).ok());
}

TEST(MbAggregateTest, StraddlingPrunedSubtreeRejected) {
  MbTree tree;
  for (std::uint64_t k = 1; k <= 500; ++k) tree.Insert(k, WordValue(k));
  MbRangeProof proof = tree.AggregateQueryWithProof(100, 400);
  // Prune an expanded (straddling) child: incompleteness must be caught.
  std::function<bool(MbProofNode*)> prune = [&](MbProofNode* node) {
    if (node->is_leaf) return false;
    for (auto& c : node->children) {
      if (c.node) {
        c.node.reset();
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(prune(proof.root.get()));
  EXPECT_FALSE(MbTree::VerifyAggregate(tree.Root(), 100, 400, proof).ok());
}

// Property sweep: random windows agree with a brute-force oracle.
class MbAggregateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbAggregateSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  MbTree tree;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> oracle;  // (key, word)
  std::uint64_t key = 0;
  for (int i = 0; i < 400; ++i) {
    key += rng.NextRange(1, 5);
    std::uint64_t word = rng.NextBelow(1000);
    tree.Insert(key, WordValue(word));
    oracle.emplace_back(key, word);
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t lo = rng.NextBelow(key + 10);
    std::uint64_t hi = rng.NextRange(lo, key + 10);
    auto agg = MbTree::VerifyAggregate(tree.Root(), lo, hi,
                                       tree.AggregateQueryWithProof(lo, hi));
    ASSERT_TRUE(agg.ok()) << "[" << lo << "," << hi << "]: " << agg.message();
    MbAggregate expected;
    for (const auto& [k, w] : oracle) {
      if (k >= lo && k <= hi) {
        expected.count += 1;
        expected.sum += w;
      }
    }
    EXPECT_EQ(agg.value(), expected) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbAggregateSweep, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dcert::mht

namespace dcert::query {
namespace {

TEST(HistoricalAggregateTest, CertifiedAggregateOverWindow) {
  // Build a certified chain of KV puts, then verify SUM/COUNT of an
  // account's versions against the certified index digest.
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = workloads::MakeBlockbenchRegistry(1);
  core::CertificateIssuer ci(config, registry);
  auto index = std::make_shared<HistoricalIndex>();
  ci.AttachIndex(index);
  chain::FullNode node(config, registry);
  chain::Miner miner(node);
  workloads::AccountPool pool(4, 501);
  std::uint64_t kv = workloads::ContractId(workloads::Workload::kKvStore, 0);

  // Account 7 receives a known sequence of values.
  std::vector<std::uint64_t> values{100, 250, 30, 45, 600, 75, 10, 999};
  std::map<std::uint64_t, std::uint64_t> sums_by_height;  // cumulative check
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::vector<chain::Transaction> txs{
        pool.MakeTx(0, kv, {0, 7, values[i]}),
        pool.MakeTx(1, kv, {0, 8, 1}),  // noise on another account
    };
    auto block = miner.MineBlock(std::move(txs), 100 + i);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(node.SubmitBlock(block.value()).ok());
    ASSERT_TRUE(ci.ProcessBlockHierarchical(block.value()).ok());
  }
  Hash256 digest = index->CurrentDigest();

  // Whole-history aggregate of account 7.
  auto all = HistoricalIndex::VerifyAggregateQuery(
      digest, 7, 1, 8, index->AggregateQuery(7, 1, 8));
  ASSERT_TRUE(all.ok()) << all.message();
  EXPECT_EQ(all.value().count, values.size());
  std::uint64_t total = 0;
  for (std::uint64_t v : values) total += v;
  EXPECT_EQ(all.value().sum, total);

  // Sub-window [3, 5] = blocks 3..5 = values[2..4].
  auto window = HistoricalIndex::VerifyAggregateQuery(
      digest, 7, 3, 5, index->AggregateQuery(7, 3, 5));
  ASSERT_TRUE(window.ok()) << window.message();
  EXPECT_EQ(window.value().count, 3u);
  EXPECT_EQ(window.value().sum, values[2] + values[3] + values[4]);

  // Unknown account: provably zero.
  auto none = HistoricalIndex::VerifyAggregateQuery(
      digest, 4242, 1, 8, index->AggregateQuery(4242, 1, 8));
  ASSERT_TRUE(none.ok()) << none.message();
  EXPECT_EQ(none.value(), mht::MbAggregate{});

  // Wrong digest rejected.
  Hash256 wrong = digest;
  wrong[0] ^= 1;
  EXPECT_FALSE(HistoricalIndex::VerifyAggregateQuery(
                   wrong, 7, 1, 8, index->AggregateQuery(7, 1, 8))
                   .ok());
}

}  // namespace
}  // namespace dcert::query
