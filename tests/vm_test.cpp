// Bytecode VM: assembler, execution semantics, failure modes, and the
// read/write-set storage views.
#include "vm/vm.h"

#include <gtest/gtest.h>

#include "vm/rwset_storage.h"

namespace dcert::vm {
namespace {

ExecResult RunAsm(const std::string& asm_src, std::vector<std::uint64_t> calldata = {},
               SlotMap backing = {}, SlotMap* writes_out = nullptr,
               SlotMap* reads_out = nullptr) {
  Program program = Assemble(asm_src);
  RwSetRecorder storage(backing);
  ExecContext ctx;
  ctx.calldata = std::move(calldata);
  ExecResult result = Execute(program, ctx, storage);
  if (writes_out != nullptr) *writes_out = storage.writes();
  if (reads_out != nullptr) *reads_out = storage.reads();
  return result;
}

TEST(AssemblerTest, EmptyAndComments) {
  Program p = Assemble("; just a comment\n\n  stop ; trailing\n");
  EXPECT_EQ(p.code.size(), 1u);
}

TEST(AssemblerTest, LabelsResolveForwardAndBackward) {
  ExecResult r = RunAsm(R"(
    jump @end
    revert
  end:
    stop
  )");
  EXPECT_TRUE(r.success) << r.error;
}

TEST(AssemblerTest, Errors) {
  EXPECT_THROW(Assemble("frobnicate"), std::invalid_argument);
  EXPECT_THROW(Assemble("push"), std::invalid_argument);            // missing operand
  EXPECT_THROW(Assemble("push zz"), std::invalid_argument);         // bad numeric
  EXPECT_THROW(Assemble("jump @nowhere"), std::invalid_argument);   // undefined label
  EXPECT_THROW(Assemble("a:\na:\nstop"), std::invalid_argument);    // duplicate label
  EXPECT_THROW(Assemble("stop extra"), std::invalid_argument);      // trailing token
}

TEST(VmTest, ArithmeticSemantics) {
  ExecResult r = RunAsm(R"(
    push 10
    push 3
    sub        ; 7
    push 4
    mul        ; 28
    push 5
    div        ; 5
    push 3
    mod        ; 2
    stop
  )");
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.stack.size(), 1u);
  EXPECT_EQ(r.stack.back(), 2u);
}

TEST(VmTest, DivisionAndModuloByZeroYieldZero) {
  ExecResult r = RunAsm("push 7\npush 0\ndiv\npush 9\npush 0\nmod\nadd\nstop");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stack.back(), 0u);
}

TEST(VmTest, WrappingArithmetic) {
  ExecResult r = RunAsm("push 0\npush 1\nsub\nstop");  // 0 - 1 wraps
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stack.back(), ~std::uint64_t{0});
}

TEST(VmTest, ComparisonsAndLogic) {
  ExecResult r = RunAsm(R"(
    push 3
    push 5
    lt         ; 1
    push 5
    push 3
    gt         ; 1
    and        ; 1
    push 7
    push 7
    eq         ; 1
    and        ; 1
    stop
  )");
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stack.back(), 1u);
}

TEST(VmTest, DupAndSwap) {
  ExecResult r = RunAsm(R"(
    push 1
    push 2
    push 3
    dup 2      ; 1 2 3 1
    swap 3     ; 1 2 3 1 -> top swaps with 4th below? stack: [1,2,3,1] -> swap3: [1,1,3,2]?
    stop
  )");
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.stack.size(), 4u);
  EXPECT_EQ(r.stack[0], 1u);
  EXPECT_EQ(r.stack[3], 1u);
}

TEST(VmTest, StackUnderflowFails) {
  EXPECT_FALSE(RunAsm("pop\nstop").success);
  EXPECT_FALSE(RunAsm("add\nstop").success);
  EXPECT_FALSE(RunAsm("push 1\ndup 1\nstop").success);
  EXPECT_FALSE(RunAsm("push 1\nswap 1\nstop").success);
}

TEST(VmTest, RevertDiscardsNothingButSignalsFailure) {
  SlotMap writes;
  ExecResult r = RunAsm("push 1\npush 2\nsstore\nrevert", {}, {}, &writes);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.error.empty());  // plain revert, not an execution error
  // The recorder still holds the buffered write; callers decide to discard.
  EXPECT_EQ(writes.size(), 1u);
}

TEST(VmTest, StepLimitEnforced) {
  Program p = Assemble("loop:\njump @loop");
  SlotMap backing;
  RwSetRecorder storage(backing);
  ExecContext ctx;
  ctx.step_limit = 1000;
  ExecResult r = Execute(p, ctx, storage);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "step limit exceeded");
}

TEST(VmTest, RunningOffCodeEndFails) {
  ExecResult r = RunAsm("push 1");  // no stop
  EXPECT_FALSE(r.success);
}

TEST(VmTest, CallerAndArgs) {
  Program p = Assemble("caller\narg 0\nadd\narg 5\nadd\nargc\nadd\nstop");
  SlotMap backing;
  RwSetRecorder storage(backing);
  ExecContext ctx;
  ctx.caller = 100;
  ctx.calldata = {7, 8};
  ExecResult r = Execute(p, ctx, storage);
  ASSERT_TRUE(r.success);
  // 100 + 7 + 0 (absent arg) + 2 (argc)
  EXPECT_EQ(r.stack.back(), 109u);
}

TEST(VmTest, StorageRoundTrip) {
  SlotMap writes, reads;
  ExecResult r = RunAsm(R"(
    push 42
    push 777
    sstore       ; slot42 = 777
    push 42
    sload
    push 1
    add
    push 43
    swap 1
    sstore       ; slot43 = 778
    stop
  )", {}, {}, &writes, &reads);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(writes.at(42), 777u);
  EXPECT_EQ(writes.at(43), 778u);
  // The read of slot 42 was served from the write buffer, so no read-set entry.
  EXPECT_TRUE(reads.empty());
}

TEST(VmTest, ReadSetRecordsPreState) {
  SlotMap backing{{5, 50}};
  SlotMap reads;
  ExecResult r = RunAsm("push 5\nsload\npop\npush 6\nsload\npop\nstop", {}, backing,
                     nullptr, &reads);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(reads.at(5), 50u);
  EXPECT_EQ(reads.at(6), 0u);  // absent keys recorded as 0
}

TEST(VmTest, HashOpDeterministic) {
  ExecResult a = RunAsm("push 1\npush 2\nhash\nstop");
  ExecResult b = RunAsm("push 1\npush 2\nhash\nstop");
  ExecResult c = RunAsm("push 2\npush 1\nhash\nstop");
  ASSERT_TRUE(a.success && b.success && c.success);
  EXPECT_EQ(a.stack.back(), b.stack.back());
  EXPECT_NE(a.stack.back(), c.stack.back());
}

TEST(ReadSetStorageTest, ServesOnlyCoveredReads) {
  SlotMap read_set{{1, 10}};
  ReadSetStorage storage(read_set);
  EXPECT_EQ(storage.Load(1), 10u);
  storage.Store(2, 20);
  EXPECT_EQ(storage.Load(2), 20u);  // own writes are visible
  EXPECT_THROW(storage.Load(3), ReadOutsideReadSet);
}

}  // namespace
}  // namespace dcert::vm
