// Chain substrate: blocks, consensus, execution, miner/full-node/light-client.
#include <gtest/gtest.h>

#include "chain/block.h"
#include "chain/consensus.h"
#include "chain/executor.h"
#include "chain/node.h"
#include "chain/state.h"
#include "workloads/workloads.h"

namespace dcert::chain {
namespace {

using workloads::AccountPool;
using workloads::ContractId;
using workloads::Workload;
using workloads::WorkloadGenerator;

std::shared_ptr<const ContractRegistry> TestRegistry() {
  static std::shared_ptr<const ContractRegistry> registry =
      workloads::MakeBlockbenchRegistry(2);
  return registry;
}

ChainConfig TestConfig() {
  ChainConfig config;
  config.difficulty_bits = 4;  // fast mining for tests
  return config;
}

TEST(BlockHeaderTest, SerializationRoundTrip) {
  BlockHeader hdr;
  hdr.prev_hash = Hash256::FromHex(std::string(64, 'b'));
  hdr.height = 7;
  hdr.timestamp = 123456;
  hdr.consensus_nonce = 42;
  hdr.difficulty_bits = 8;
  auto decoded = BlockHeader::Deserialize(hdr.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), hdr);
  EXPECT_EQ(decoded.value().Hash(), hdr.Hash());
  EXPECT_EQ(hdr.Serialize().size(), HeaderByteSize());
}

TEST(TransactionTest, CreateVerifyRoundTrip) {
  AccountPool pool(2, 1);
  Transaction tx = pool.MakeTx(0, ContractId(Workload::kKvStore, 0), {0, 5, 99});
  EXPECT_TRUE(tx.VerifySignature().ok());

  auto decoded = Transaction::Deserialize(tx.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().VerifySignature().ok());
  EXPECT_EQ(decoded.value().Hash(), tx.Hash());
}

TEST(TransactionTest, TamperingBreaksSignature) {
  AccountPool pool(1, 2);
  Transaction tx = pool.MakeTx(0, 3000, {0, 1, 2});
  tx.calldata[2] = 3;
  EXPECT_FALSE(tx.VerifySignature().ok());
}

TEST(ConsensusTest, MineAndVerify) {
  BlockHeader hdr;
  hdr.difficulty_bits = 8;
  MineNonce(hdr);
  EXPECT_TRUE(VerifyConsensus(hdr).ok());
  hdr.consensus_nonce += 1;
  // With 8 difficulty bits a random neighboring nonce almost surely fails.
  // (If it happened to pass, incrementing again will not; check both.)
  if (VerifyConsensus(hdr).ok()) {
    hdr.consensus_nonce += 1;
  }
  EXPECT_FALSE(VerifyConsensus(hdr).ok());
}

TEST(ConsensusTest, ExcessiveDifficultyRejected) {
  BlockHeader hdr;
  hdr.difficulty_bits = 60;
  EXPECT_THROW(MineNonce(hdr), std::invalid_argument);
}

TEST(ConsensusTest, ChainSelectionIsLongestChain) {
  BlockHeader taller;
  taller.height = 10;
  EXPECT_TRUE(SatisfiesChainSelection(9, taller));
  EXPECT_FALSE(SatisfiesChainSelection(10, taller));
  EXPECT_FALSE(SatisfiesChainSelection(11, taller));
}

TEST(StateTest, StateDbAndValueHash) {
  StateDB db;
  StateKey key = SlotKey(1, 2);
  EXPECT_EQ(db.Load(key), 0u);
  db.Store(key, 99);
  EXPECT_EQ(db.Load(key), 99u);
  Hash256 root_with = db.Root();
  db.Store(key, 0);  // delete
  EXPECT_EQ(db.Load(key), 0u);
  EXPECT_NE(db.Root(), root_with);
  EXPECT_TRUE(StateValueHash(0).IsZero());
  EXPECT_FALSE(StateValueHash(7).IsZero());
}

TEST(StateTest, KeysAreDomainSeparated) {
  AccountPool pool(1, 3);
  EXPECT_NE(SlotKey(1, 2), SlotKey(2, 1));
  EXPECT_NE(SlotKey(0, 0), NonceKey(pool.PublicKeyAt(0)));
}

TEST(ExecutorTest, KvPutUpdatesState) {
  AccountPool pool(1, 4);
  StateDB db;
  std::uint64_t kv = ContractId(Workload::kKvStore, 0);
  std::vector<Transaction> txs{pool.MakeTx(0, kv, {0, 7, 1234})};
  auto result = ExecuteBlockTxs(txs, *TestRegistry(), db);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_TRUE(result.value().receipts[0].success);
  EXPECT_EQ(result.value().writes.at(SlotKey(kv, 7)), 1234u);
  // Nonce consumed.
  EXPECT_EQ(result.value().writes.at(NonceKey(pool.PublicKeyAt(0))), 1u);
}

TEST(ExecutorTest, NonceMismatchInvalidatesBlock) {
  AccountPool pool(1, 5);
  StateDB db;
  std::uint64_t kv = ContractId(Workload::kKvStore, 0);
  pool.MakeTx(0, kv, {0, 1, 1});  // burn nonce 0
  std::vector<Transaction> txs{pool.MakeTx(0, kv, {0, 2, 2})};  // nonce 1 vs state 0
  auto result = ExecuteBlockTxs(txs, *TestRegistry(), db);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, InvalidSignatureInvalidatesBlock) {
  AccountPool pool(1, 6);
  StateDB db;
  Transaction tx = pool.MakeTx(0, ContractId(Workload::kKvStore, 0), {0, 1, 1});
  tx.calldata[2] = 99;  // breaks the signature
  auto result = ExecuteBlockTxs({tx}, *TestRegistry(), db);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, UnknownContractRevertsButConsumesNonce) {
  AccountPool pool(1, 7);
  StateDB db;
  std::vector<Transaction> txs{pool.MakeTx(0, 999'999, {1, 2, 3})};
  auto result = ExecuteBlockTxs(txs, *TestRegistry(), db);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_FALSE(result.value().receipts[0].success);
  EXPECT_EQ(result.value().writes.at(NonceKey(pool.PublicKeyAt(0))), 1u);
  EXPECT_EQ(result.value().writes.size(), 1u);  // only the nonce
}

TEST(ExecutorTest, RevertDiscardsStorageWrites) {
  // SmallBank sendPayment with insufficient balance reverts.
  AccountPool pool(1, 8);
  StateDB db;
  std::uint64_t sb = ContractId(Workload::kSmallBank, 0);
  std::vector<Transaction> txs{pool.MakeTx(0, sb, {3, 1, 2, 50})};
  auto result = ExecuteBlockTxs(txs, *TestRegistry(), db);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_FALSE(result.value().receipts[0].success);
  // Nonce write only — the payment's partial writes were discarded.
  EXPECT_EQ(result.value().writes.size(), 1u);
}

TEST(ExecutorTest, ReadYourWritesAcrossTransactions) {
  AccountPool pool(2, 9);
  StateDB db;
  std::uint64_t sb = ContractId(Workload::kSmallBank, 0);
  std::vector<Transaction> txs{
      pool.MakeTx(0, sb, {1, 5, 100}),    // deposit 100 to account 5
      pool.MakeTx(1, sb, {3, 5, 6, 60}),  // pay 60 from 5 to 6 — needs tx 1's write
  };
  auto result = ExecuteBlockTxs(txs, *TestRegistry(), db);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_TRUE(result.value().receipts[0].success);
  EXPECT_TRUE(result.value().receipts[1].success);
  EXPECT_EQ(result.value().writes.at(SlotKey(sb, 5 * 2 + 1)), 40u);
  EXPECT_EQ(result.value().writes.at(SlotKey(sb, 6 * 2 + 1)), 60u);
}

TEST(ExecutorTest, RegistryDigestPinsCode) {
  auto a = workloads::MakeBlockbenchRegistry(2);
  auto b = workloads::MakeBlockbenchRegistry(2);
  auto c = workloads::MakeBlockbenchRegistry(3);
  EXPECT_EQ(a->Digest(), b->Digest());
  EXPECT_NE(a->Digest(), c->Digest());
}

TEST(NodeTest, GenesisIsDeterministic) {
  Block g1 = MakeGenesisBlock(TestConfig());
  Block g2 = MakeGenesisBlock(TestConfig());
  EXPECT_EQ(g1.header.Hash(), g2.header.Hash());
  EXPECT_TRUE(VerifyConsensus(g1.header).ok());
}

TEST(NodeTest, MineSubmitRoundTrip) {
  FullNode node(TestConfig(), TestRegistry());
  AccountPool pool(4, 10);
  WorkloadGenerator::Params params;
  params.kind = Workload::kKvStore;
  params.instances_per_workload = 2;
  WorkloadGenerator gen(params, pool);
  Miner miner(node);

  for (int i = 0; i < 5; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(10), 1000 + i);
    ASSERT_TRUE(block.ok()) << block.message();
    ASSERT_TRUE(node.SubmitBlock(block.value()).ok());
  }
  EXPECT_EQ(node.Height(), 5u);
  EXPECT_GT(node.State().Size(), 0u);
  EXPECT_GT(node.StorageBytes(), 5 * HeaderByteSize());
}

TEST(NodeTest, SubmitRejectsTamperedBlocks) {
  FullNode node(TestConfig(), TestRegistry());
  AccountPool pool(2, 11);
  WorkloadGenerator::Params params;
  params.kind = Workload::kSmallBank;
  params.instances_per_workload = 2;
  WorkloadGenerator gen(params, pool);
  Miner miner(node);
  auto block = miner.MineBlock(gen.NextBlockTxs(5), 1000);
  ASSERT_TRUE(block.ok());

  Block wrong_height = block.value();
  wrong_height.header.height += 1;
  EXPECT_FALSE(node.SubmitBlock(wrong_height).ok());

  Block wrong_state = block.value();
  wrong_state.header.state_root[0] ^= 1;
  MineNonce(wrong_state.header);
  EXPECT_FALSE(node.SubmitBlock(wrong_state).ok());

  Block dropped_tx = block.value();
  dropped_tx.txs.pop_back();
  EXPECT_FALSE(node.SubmitBlock(dropped_tx).ok());

  Block bad_nonce = block.value();
  bad_nonce.header.consensus_nonce += 1;
  if (VerifyConsensus(bad_nonce.header).ok()) bad_nonce.header.consensus_nonce += 1;
  EXPECT_FALSE(node.SubmitBlock(bad_nonce).ok());

  // The untouched block still goes through.
  EXPECT_TRUE(node.SubmitBlock(block.value()).ok());
}

TEST(LightClientTest, SyncAndValidate) {
  FullNode node(TestConfig(), TestRegistry());
  AccountPool pool(2, 12);
  WorkloadGenerator::Params params;
  params.kind = Workload::kDoNothing;
  params.instances_per_workload = 2;
  WorkloadGenerator gen(params, pool);
  Miner miner(node);

  LightClient client(node.GetBlock(0).header);
  for (int i = 0; i < 10; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(2), 2000 + i);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(node.SubmitBlock(block.value()).ok());
    ASSERT_TRUE(client.SyncHeader(block.value().header).ok());
  }
  EXPECT_EQ(client.Height(), 10u);
  EXPECT_EQ(client.StorageBytes(), 11 * HeaderByteSize());
  EXPECT_TRUE(client.ValidateAll().ok());
}

TEST(LightClientTest, RejectsBrokenLinkage) {
  FullNode node(TestConfig(), TestRegistry());
  LightClient client(node.GetBlock(0).header);
  BlockHeader fake;
  fake.height = 1;
  fake.prev_hash = Hash256();  // wrong parent
  fake.difficulty_bits = TestConfig().difficulty_bits;
  MineNonce(fake);
  EXPECT_FALSE(client.SyncHeader(fake).ok());

  BlockHeader skip = node.GetBlock(0).header;
  skip.height = 5;  // non-consecutive
  skip.prev_hash = node.GetBlock(0).header.Hash();
  MineNonce(skip);
  EXPECT_FALSE(client.SyncHeader(skip).ok());
}

TEST(BlockTest, SerializationRoundTrip) {
  FullNode node(TestConfig(), TestRegistry());
  AccountPool pool(2, 13);
  WorkloadGenerator::Params params;
  params.kind = Workload::kKvStore;
  params.instances_per_workload = 2;
  WorkloadGenerator gen(params, pool);
  Miner miner(node);
  auto block = miner.MineBlock(gen.NextBlockTxs(3), 1);
  ASSERT_TRUE(block.ok());
  auto decoded = Block::Deserialize(block.value().Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().header, block.value().header);
  EXPECT_EQ(decoded.value().txs.size(), 3u);
}

}  // namespace
}  // namespace dcert::chain
