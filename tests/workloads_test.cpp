// Blockbench workload programs: each contract's semantics on our VM.
#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "chain/executor.h"
#include "chain/node.h"
#include "chain/state.h"
#include "vm/rwset_storage.h"

namespace dcert::workloads {
namespace {

vm::ExecResult RunWorkload(Workload kind, std::vector<std::uint64_t> calldata,
                           vm::SlotMap& backing, vm::SlotMap* writes = nullptr) {
  vm::RwSetRecorder storage(backing);
  vm::ExecContext ctx;
  ctx.calldata = std::move(calldata);
  vm::ExecResult result = vm::Execute(ProgramFor(kind), ctx, storage);
  if (result.success) {
    for (const auto& [k, v] : storage.writes()) backing[k] = v;
  }
  if (writes != nullptr) *writes = storage.writes();
  return result;
}

TEST(WorkloadsTest, NamesAndContractIds) {
  EXPECT_EQ(Name(Workload::kDoNothing), "DN");
  EXPECT_EQ(Name(Workload::kSmallBank), "SB");
  EXPECT_EQ(ContractId(Workload::kKvStore, 7), 3007u);
  auto registry = MakeBlockbenchRegistry(3);
  EXPECT_EQ(registry->Size(), 15u);
  EXPECT_NE(registry->Find(ContractId(Workload::kCpuHeavy, 2)), nullptr);
  EXPECT_EQ(registry->Find(ContractId(Workload::kCpuHeavy, 3)), nullptr);
}

TEST(WorkloadsTest, DoNothingDoesNothing) {
  vm::SlotMap state;
  vm::SlotMap writes;
  vm::ExecResult r = RunWorkload(Workload::kDoNothing, {}, state, &writes);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(writes.empty());
  EXPECT_LE(r.steps, 2u);
}

TEST(WorkloadsTest, CpuHeavyScalesWithIterations) {
  vm::SlotMap state;
  vm::ExecResult small = RunWorkload(Workload::kCpuHeavy, {10}, state);
  vm::ExecResult large = RunWorkload(Workload::kCpuHeavy, {100}, state);
  ASSERT_TRUE(small.success) << small.error;
  ASSERT_TRUE(large.success) << large.error;
  EXPECT_GT(large.steps, small.steps * 5);
  EXPECT_TRUE(state.empty());  // pure compute
}

TEST(WorkloadsTest, IoHeavyWritesThenScans) {
  vm::SlotMap state;
  vm::SlotMap writes;
  vm::ExecResult w = RunWorkload(Workload::kIoHeavy, {0, 100, 16}, state, &writes);
  ASSERT_TRUE(w.success) << w.error;
  EXPECT_EQ(writes.size(), 16u);
  for (std::uint64_t k = 100; k < 116; ++k) {
    EXPECT_EQ(state.at(k), k * 31 + 7);
  }
  vm::SlotMap scan_writes;
  vm::ExecResult s = RunWorkload(Workload::kIoHeavy, {1, 100, 16}, state, &scan_writes);
  ASSERT_TRUE(s.success) << s.error;
  EXPECT_TRUE(scan_writes.empty());
}

TEST(WorkloadsTest, KvStorePutGet) {
  vm::SlotMap state;
  vm::SlotMap writes;
  ASSERT_TRUE(RunWorkload(Workload::kKvStore, {0, 5, 777}, state, &writes).success);
  EXPECT_EQ(writes.at(5), 777u);
  EXPECT_EQ(state.at(5), 777u);
  vm::SlotMap get_writes;
  ASSERT_TRUE(RunWorkload(Workload::kKvStore, {1, 5, 0}, state, &get_writes).success);
  EXPECT_TRUE(get_writes.empty());
}

class SmallBankTest : public ::testing::Test {
 protected:
  static std::uint64_t Sav(std::uint64_t acct) { return acct * 2; }
  static std::uint64_t Chk(std::uint64_t acct) { return acct * 2 + 1; }
  vm::SlotMap state_;
};

TEST_F(SmallBankTest, DepositAndSavings) {
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {1, 3, 100}, state_).success);
  EXPECT_EQ(state_.at(Chk(3)), 100u);
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {2, 3, 55}, state_).success);
  EXPECT_EQ(state_.at(Sav(3)), 55u);
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {1, 3, 10}, state_).success);
  EXPECT_EQ(state_.at(Chk(3)), 110u);
}

TEST_F(SmallBankTest, GetBalanceReadsOnly) {
  state_[Sav(2)] = 40;
  state_[Chk(2)] = 60;
  vm::SlotMap writes;
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {0, 2}, state_, &writes).success);
  EXPECT_TRUE(writes.empty());
}

TEST_F(SmallBankTest, SendPaymentMovesFunds) {
  state_[Chk(1)] = 100;
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {3, 1, 2, 30}, state_).success);
  EXPECT_EQ(state_.at(Chk(1)), 70u);
  EXPECT_EQ(state_.at(Chk(2)), 30u);
}

TEST_F(SmallBankTest, SendPaymentInsufficientFundsReverts) {
  state_[Chk(1)] = 10;
  vm::ExecResult r = RunWorkload(Workload::kSmallBank, {3, 1, 2, 30}, state_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(state_.at(Chk(1)), 10u);  // unchanged
  EXPECT_EQ(state_.count(Chk(2)), 0u);
}

TEST_F(SmallBankTest, WriteCheckDebits) {
  state_[Chk(4)] = 100;
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {4, 4, 25}, state_).success);
  EXPECT_EQ(state_.at(Chk(4)), 75u);
  EXPECT_FALSE(RunWorkload(Workload::kSmallBank, {4, 4, 1000}, state_).success);
}

TEST_F(SmallBankTest, AmalgamateMergesIntoDestination) {
  state_[Sav(1)] = 30;
  state_[Chk(1)] = 20;
  state_[Chk(2)] = 5;
  ASSERT_TRUE(RunWorkload(Workload::kSmallBank, {5, 1, 2}, state_).success);
  EXPECT_EQ(state_.at(Chk(2)), 55u);
  EXPECT_EQ(state_[Sav(1)], 0u);
  EXPECT_EQ(state_[Chk(1)], 0u);
}

TEST_F(SmallBankTest, UnknownOpReverts) {
  EXPECT_FALSE(RunWorkload(Workload::kSmallBank, {42, 1}, state_).success);
}

TEST(AccountPoolTest, DeterministicKeysAndNonces) {
  AccountPool a(3, 7);
  AccountPool b(3, 7);
  AccountPool c(3, 8);
  EXPECT_EQ(a.PublicKeyAt(0), b.PublicKeyAt(0));
  EXPECT_NE(a.PublicKeyAt(0), c.PublicKeyAt(0));
  EXPECT_NE(a.PublicKeyAt(0), a.PublicKeyAt(1));

  chain::Transaction t0 = a.MakeTx(0, 1, {});
  chain::Transaction t1 = a.MakeTx(0, 1, {});
  EXPECT_EQ(t0.nonce, 0u);
  EXPECT_EQ(t1.nonce, 1u);
  EXPECT_THROW(a.MakeTx(5, 1, {}), std::out_of_range);
}

// Every workload generates blocks that a full node accepts end-to-end.
class WorkloadBlockSweep : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadBlockSweep, GeneratedBlocksValidate) {
  chain::ChainConfig config;
  config.difficulty_bits = 2;
  auto registry = MakeBlockbenchRegistry(2);
  chain::FullNode node(config, registry);
  chain::Miner miner(node);
  AccountPool pool(8, 21);
  WorkloadGenerator::Params params;
  params.kind = GetParam();
  params.instances_per_workload = 2;
  params.cpu_iterations = 50;
  params.io_keys_per_tx = 8;
  WorkloadGenerator gen(params, pool);

  for (int i = 0; i < 3; ++i) {
    auto block = miner.MineBlock(gen.NextBlockTxs(12), 100 + i);
    ASSERT_TRUE(block.ok()) << Name(GetParam()) << ": " << block.message();
    ASSERT_TRUE(node.SubmitBlock(block.value()).ok()) << Name(GetParam());
  }
  EXPECT_EQ(node.Height(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadBlockSweep,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto& info) { return Name(info.param); });

}  // namespace
}  // namespace dcert::workloads
