// SHA-256 and HMAC-SHA256 against published test vectors (FIPS 180-4 / RFC 4231).
#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256_batch.h"
#include "crypto/sha256_compress.h"

namespace dcert::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest({}).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest(StrBytes("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Digest(StrBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(StrBytes(chunk));
  EXPECT_EQ(ctx.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(StrBytes(msg.substr(0, split)));
    ctx.Update(StrBytes(msg.substr(split)));
    EXPECT_EQ(ctx.Finalize(), Sha256::Digest(StrBytes(msg))) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // Messages of length 55, 56, 63, 64, 65 exercise every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 a;
    a.Update(StrBytes(msg));
    Hash256 streamed = a.Finalize();
    EXPECT_EQ(streamed, Sha256::Digest(StrBytes(msg))) << "len=" << len;
  }
}

TEST(Sha256Test, Digest2IsConcatenation) {
  Bytes a = StrBytes("hello ");
  Bytes b = StrBytes("world");
  EXPECT_EQ(Sha256::Digest2(a, b), Sha256::Digest(StrBytes("hello world")));
}

TEST(Sha256Test, FinalizeTwiceThrows) {
  Sha256 ctx;
  ctx.Update(StrBytes("x"));
  ctx.Finalize();
  EXPECT_THROW(ctx.Finalize(), std::logic_error);
  EXPECT_THROW(ctx.Update(StrBytes("y")), std::logic_error);
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.Update(StrBytes("abc"));
  ctx.Finalize();
  ctx.Reset();
  ctx.Update(StrBytes("abc"));
  EXPECT_EQ(ctx.Finalize().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HmacSha256(key, StrBytes("Hi There")).ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256(StrBytes("Jefe"), StrBytes("what do ya want for nothing?")).ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(HmacSha256(key, data).ToHex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size gets hashed first.
TEST(HmacSha256Test, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      HmacSha256(key, StrBytes("Test Using Larger Than Block-Size Key - Hash Key First"))
          .ToHex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, DifferentKeysDiffer) {
  EXPECT_NE(HmacSha256(StrBytes("k1"), StrBytes("m")),
            HmacSha256(StrBytes("k2"), StrBytes("m")));
}

// Dispatch: on SHA-NI hardware the resolved compress function must be the
// hardware path (otherwise every digest silently takes the scalar road) —
// unless a runtime override (DCERT_FORCE_SCALAR_HASH / _SHA_BACKEND) forces
// the fallback, which is exactly how the CI forced-scalar leg runs this
// whole suite.
TEST(Sha256DispatchTest, ResolvesHardwarePathWhenSupported) {
  if (ActiveStreamBackend() == ShaBackend::kShaNi) {
    EXPECT_EQ(internal::GetCompressFn(), &internal::CompressShaNi);
  } else {
    EXPECT_EQ(internal::GetCompressFn(), &internal::CompressScalar);
  }
  if (internal::ShaNiSupported() &&
      std::getenv("DCERT_FORCE_SCALAR_HASH") == nullptr &&
      std::getenv("DCERT_FORCE_SHA_BACKEND") == nullptr) {
    EXPECT_EQ(ActiveStreamBackend(), ShaBackend::kShaNi);
  }
}

// Both compress implementations must agree on multi-block inputs (the NI
// path processes blocks in a hardware loop; vectors above only cover it
// indirectly through whole digests).
TEST(Sha256DispatchTest, CompressImplementationsAgreeOnMultiBlockInputs) {
  if (!internal::ShaNiSupported()) {
    GTEST_SKIP() << "no SHA-NI on this host; scalar path is the only path";
  }
  // SHA-256 initial state (FIPS 180-4).
  const std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                  0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  for (std::size_t nblocks : {1u, 2u, 3u, 7u, 16u}) {
    std::vector<std::uint8_t> data(64 * nblocks);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>((i * 131 + 7 * nblocks) & 0xff);
    }
    std::uint32_t scalar_state[8], ni_state[8];
    std::copy(std::begin(kInit), std::end(kInit), scalar_state);
    std::copy(std::begin(kInit), std::end(kInit), ni_state);
    internal::CompressScalar(scalar_state, data.data(), nblocks);
    internal::CompressShaNi(ni_state, data.data(), nblocks);
    for (int w = 0; w < 8; ++w) {
      EXPECT_EQ(scalar_state[w], ni_state[w])
          << "word " << w << ", blocks " << nblocks;
    }
  }
}

// --- multi-buffer backend equivalence -------------------------------------

std::vector<ShaBackend> SupportedBackends() {
  std::vector<ShaBackend> v{ShaBackend::kScalar};
  if (ShaBackendSupported(ShaBackend::kShaNi)) v.push_back(ShaBackend::kShaNi);
  if (ShaBackendSupported(ShaBackend::kAvx2)) v.push_back(ShaBackend::kAvx2);
  return v;
}

// Every supported multi-buffer backend must reproduce the streaming digest
// bit-for-bit over random message lengths (padding boundaries included),
// batch sizes covering partial and multiple SIMD lane groups, and ragged
// tails where lanes carry different block counts.
TEST(Sha256BatchTest, BackendFuzzEquivalence) {
  Rng rng(20260809);
  constexpr std::size_t kBoundary[] = {0,  1,  31,  32,  33,  55,  56,
                                       63, 64, 65,  119, 120, 127, 128,
                                       129, 191, 192, 300};
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.NextBelow(17);  // 1..17 jobs per batch
    std::vector<Bytes> msgs(n);
    std::vector<Hash256> outs(n);
    std::vector<Hash256> expected(n);
    std::vector<HashJob> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len =
          rng.NextBelow(2) == 0
              ? kBoundary[rng.NextBelow(std::size(kBoundary))]
              : rng.NextBelow(301);
      msgs[i] = rng.NextBytes(len);
      expected[i] = Sha256::Digest(msgs[i]);
      jobs[i] = {msgs[i].data(), msgs[i].size(), &outs[i]};
    }
    for (ShaBackend backend : SupportedBackends()) {
      std::fill(outs.begin(), outs.end(), Hash256());
      internal::HashManyWith(backend, jobs.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(outs[i], expected[i])
            << "backend " << ShaBackendName(backend) << ", round " << round
            << ", job " << i << ", len " << msgs[i].size();
      }
    }
  }
}

// HashPadded is the fold-loop entry: pre-padded fixed-geometry messages. It
// must match the streaming digest, including when a job's output aliases its
// own message bytes (the in-place chaining idiom in the SMT batch rehash).
TEST(Sha256BatchTest, HashPaddedMatchesOneShotIncludingAliasedOutput) {
  Rng rng(7);
  constexpr std::size_t kJobs = 37;  // exercises quad, pair, and tail paths
  std::vector<std::uint8_t> slots(kJobs * 128);
  std::vector<std::uint8_t> outs(kJobs * 32);
  std::vector<Hash256> expected(kJobs);
  std::vector<PaddedJob> jobs(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    std::uint8_t* slot = slots.data() + i * 128;
    const Bytes msg = rng.NextBytes(65);
    std::memcpy(slot, msg.data(), 65);
    slot[65] = 0x80;
    std::memset(slot + 66, 0, 60);
    slot[126] = 0x02;  // 65 * 8 = 520 = 0x0208 bits
    slot[127] = 0x08;
    expected[i] = Sha256::Digest(msg);
    jobs[i] = {slot, outs.data() + i * 32};
  }
  HashPadded(jobs.data(), kJobs, /*m=*/2);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(std::memcmp(outs.data() + i * 32, expected[i].begin(), 32), 0)
        << "job " << i;
  }
  // Aliased: each digest lands on bytes [1,33) of its own message slot.
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs[i].out = slots.data() + i * 128 + 1;
  }
  HashPadded(jobs.data(), kJobs, /*m=*/2);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(std::memcmp(slots.data() + i * 128 + 1, expected[i].begin(), 32),
              0)
        << "aliased job " << i;
  }
}

// Runtime dispatch must never hand out a backend the CPU cannot run, no
// matter what the override string says.
TEST(Sha256DispatchTest, ResolveNeverSelectsUnsupportedBackend) {
  const char* overrides[] = {nullptr, "",     "scalar", "shani",
                             "sha-ni", "avx2", "AVX2",   "bogus"};
  for (const char* ov : overrides) {
    for (bool batch : {false, true}) {
      const ShaBackend b = internal::ResolveShaBackend(ov, batch);
      EXPECT_TRUE(ShaBackendSupported(b))
          << "override '" << (ov == nullptr ? "<null>" : ov) << "' batch "
          << batch << " resolved to unsupported "
          << ShaBackendName(b);
    }
  }
  // Scalar is always honored; AVX2 is batch-only so the stream path must
  // fall back to something else.
  EXPECT_EQ(internal::ResolveShaBackend("scalar", true), ShaBackend::kScalar);
  EXPECT_EQ(internal::ResolveShaBackend("scalar", false), ShaBackend::kScalar);
  EXPECT_NE(internal::ResolveShaBackend("avx2", false), ShaBackend::kAvx2);
  // Whatever is live right now must be runnable here.
  EXPECT_TRUE(ShaBackendSupported(ActiveBatchBackend()));
  EXPECT_TRUE(ShaBackendSupported(ActiveStreamBackend()));
}

TEST(Sha256DispatchTest, HashManyWithRejectsUnsupportedBackend) {
  if (ShaBackendSupported(ShaBackend::kAvx2)) {
    GTEST_SKIP() << "every backend is supported on this host";
  }
  Hash256 out;
  const std::uint8_t byte = 0x42;
  HashJob job{&byte, 1, &out};
  EXPECT_THROW(internal::HashManyWith(ShaBackend::kAvx2, &job, 1),
               std::runtime_error);
}

}  // namespace
}  // namespace dcert::crypto
