// SHA-256 and HMAC-SHA256 against published test vectors (FIPS 180-4 / RFC 4231).
#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256_compress.h"

namespace dcert::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest({}).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest(StrBytes("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Digest(StrBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(StrBytes(chunk));
  EXPECT_EQ(ctx.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(StrBytes(msg.substr(0, split)));
    ctx.Update(StrBytes(msg.substr(split)));
    EXPECT_EQ(ctx.Finalize(), Sha256::Digest(StrBytes(msg))) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // Messages of length 55, 56, 63, 64, 65 exercise every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 a;
    a.Update(StrBytes(msg));
    Hash256 streamed = a.Finalize();
    EXPECT_EQ(streamed, Sha256::Digest(StrBytes(msg))) << "len=" << len;
  }
}

TEST(Sha256Test, Digest2IsConcatenation) {
  Bytes a = StrBytes("hello ");
  Bytes b = StrBytes("world");
  EXPECT_EQ(Sha256::Digest2(a, b), Sha256::Digest(StrBytes("hello world")));
}

TEST(Sha256Test, FinalizeTwiceThrows) {
  Sha256 ctx;
  ctx.Update(StrBytes("x"));
  ctx.Finalize();
  EXPECT_THROW(ctx.Finalize(), std::logic_error);
  EXPECT_THROW(ctx.Update(StrBytes("y")), std::logic_error);
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.Update(StrBytes("abc"));
  ctx.Finalize();
  ctx.Reset();
  ctx.Update(StrBytes("abc"));
  EXPECT_EQ(ctx.Finalize().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test case 1.
TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HmacSha256(key, StrBytes("Hi There")).ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256(StrBytes("Jefe"), StrBytes("what do ya want for nothing?")).ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(HmacSha256(key, data).ToHex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size gets hashed first.
TEST(HmacSha256Test, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      HmacSha256(key, StrBytes("Test Using Larger Than Block-Size Key - Hash Key First"))
          .ToHex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, DifferentKeysDiffer) {
  EXPECT_NE(HmacSha256(StrBytes("k1"), StrBytes("m")),
            HmacSha256(StrBytes("k2"), StrBytes("m")));
}

// Dispatch: on SHA-NI hardware the resolved compress function must be the
// hardware path (otherwise every digest silently takes the scalar road).
TEST(Sha256DispatchTest, ResolvesHardwarePathWhenSupported) {
  if (internal::ShaNiSupported()) {
    EXPECT_EQ(internal::GetCompressFn(), &internal::CompressShaNi);
  } else {
    EXPECT_EQ(internal::GetCompressFn(), &internal::CompressScalar);
  }
}

// Both compress implementations must agree on multi-block inputs (the NI
// path processes blocks in a hardware loop; vectors above only cover it
// indirectly through whole digests).
TEST(Sha256DispatchTest, CompressImplementationsAgreeOnMultiBlockInputs) {
  if (!internal::ShaNiSupported()) {
    GTEST_SKIP() << "no SHA-NI on this host; scalar path is the only path";
  }
  // SHA-256 initial state (FIPS 180-4).
  const std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                  0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  for (std::size_t nblocks : {1u, 2u, 3u, 7u, 16u}) {
    std::vector<std::uint8_t> data(64 * nblocks);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>((i * 131 + 7 * nblocks) & 0xff);
    }
    std::uint32_t scalar_state[8], ni_state[8];
    std::copy(std::begin(kInit), std::end(kInit), scalar_state);
    std::copy(std::begin(kInit), std::end(kInit), ni_state);
    internal::CompressScalar(scalar_state, data.data(), nblocks);
    internal::CompressShaNi(ni_state, data.data(), nblocks);
    for (int w = 0; w < 8; ++w) {
      EXPECT_EQ(scalar_state[w], ni_state[w])
          << "word " << w << ", blocks " << nblocks;
    }
  }
}

}  // namespace
}  // namespace dcert::crypto
