// DCert core: end-to-end block certification (Alg. 1-2), superlight client
// validation (Alg. 3), and the forgery paths of Theorem 1.
#include <gtest/gtest.h>

#include "dcert/certificate.h"
#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "workloads/workloads.h"

namespace dcert::core {
namespace {

using workloads::AccountPool;
using workloads::Workload;
using workloads::WorkloadGenerator;

struct TestRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{6, 31};
  std::unique_ptr<WorkloadGenerator> gen;

  explicit TestRig(Workload kind = Workload::kKvStore) {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(2);
    ci = std::make_unique<CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    WorkloadGenerator::Params params;
    params.kind = kind;
    params.instances_per_workload = 2;
    params.cpu_iterations = 20;
    params.io_keys_per_tx = 4;
    gen = std::make_unique<WorkloadGenerator>(params, pool);
  }

  chain::Block NextBlock(std::size_t txs = 8) {
    auto block = miner->MineBlock(gen->NextBlockTxs(txs), 1000 + miner_node->Height());
    if (!block.ok()) throw std::runtime_error(block.message());
    Status st = miner_node->SubmitBlock(block.value());
    if (!st) throw std::runtime_error(st.message());
    return block.value();
  }
};

TEST(CertificateTest, SerializationRoundTrip) {
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  auto cert = rig.ci->ProcessBlock(blk);
  ASSERT_TRUE(cert.ok()) << cert.message();
  auto decoded = BlockCertificate::Deserialize(cert.value().Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value(), cert.value());
}

TEST(DcertE2eTest, CertifyChainAndValidateOnSuperlightClient) {
  TestRig rig;
  SuperlightClient client(ExpectedEnclaveMeasurement());

  for (int i = 0; i < 5; ++i) {
    chain::Block blk = rig.NextBlock();
    auto cert = rig.ci->ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << "block " << i << ": " << cert.message();
    ASSERT_TRUE(client.ValidateAndAccept(blk.header, cert.value()).ok());
  }
  EXPECT_EQ(client.Height(), 5u);
  // Constant storage: just the latest header + certificate.
  EXPECT_LT(client.StorageBytes(), 4096u);
  // The attestation report verified exactly once despite 5 certificates.
  EXPECT_EQ(client.ReportVerifications(), 1u);
}

TEST(DcertE2eTest, TimingBreakdownPopulated) {
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  ASSERT_TRUE(rig.ci->ProcessBlock(blk).ok());
  const CertTiming& t = rig.ci->LastTiming();
  EXPECT_GT(t.rwset_ns, 0u);
  EXPECT_GT(t.proof_ns, 0u);
  EXPECT_GT(t.enclave_wall_ns, 0u);
  EXPECT_GE(t.enclave_modeled_ns, t.enclave_wall_ns);
  EXPECT_EQ(t.ecalls, 1u);
}

TEST(DcertE2eTest, EveryWorkloadCertifies) {
  for (Workload kind : workloads::kAllWorkloads) {
    TestRig rig(kind);
    chain::Block blk = rig.NextBlock(6);
    auto cert = rig.ci->ProcessBlock(blk);
    ASSERT_TRUE(cert.ok()) << workloads::Name(kind) << ": " << cert.message();
  }
}

TEST(DcertE2eTest, CiRejectsBlockNotExtendingTip) {
  TestRig rig;
  chain::Block b1 = rig.NextBlock();
  chain::Block b2 = rig.NextBlock();
  // b2 before b1: not extending the CI tip.
  EXPECT_FALSE(rig.ci->ProcessBlock(b2).ok());
  EXPECT_TRUE(rig.ci->ProcessBlock(b1).ok());
  EXPECT_TRUE(rig.ci->ProcessBlock(b2).ok());
}

// --- Theorem 1 forgery paths ---

TEST(EnclaveSecurityTest, RejectsTamperedStateRoot) {
  TestRig rig;
  chain::Block b1 = rig.NextBlock();
  ASSERT_TRUE(rig.ci->ProcessBlock(b1).ok());
  chain::Block b2 = rig.NextBlock();
  chain::Block forged = b2;
  forged.header.state_root[0] ^= 1;
  chain::MineNonce(forged.header);
  EXPECT_FALSE(rig.ci->ProcessBlock(forged).ok());
}

TEST(EnclaveSecurityTest, RejectsDroppedAndInjectedTransactions) {
  TestRig rig;
  chain::Block blk = rig.NextBlock(4);
  chain::Block dropped = blk;
  dropped.txs.pop_back();
  EXPECT_FALSE(rig.ci->ProcessBlock(dropped).ok());
}

TEST(EnclaveSecurityTest, RejectsBadConsensusProof) {
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  chain::Block forged = blk;
  forged.header.consensus_nonce += 1;
  if (chain::VerifyConsensus(forged.header).ok()) forged.header.consensus_nonce += 1;
  EXPECT_FALSE(rig.ci->ProcessBlock(forged).ok());
}

TEST(EnclaveSecurityTest, EnclaveRejectsForgedPreviousCertificate) {
  // Drive the enclave program directly with a tampered prev cert.
  TestRig rig;
  chain::Block b1 = rig.NextBlock();
  auto cert1 = rig.ci->ProcessBlock(b1);
  ASSERT_TRUE(cert1.ok());
  chain::Block b2 = rig.NextBlock();

  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(rig.config).header.Hash();
  ec.registry_digest = rig.registry->Digest();
  ec.difficulty_bits = rig.config.difficulty_bits;
  CertEnclaveProgram program(ec, rig.registry, StrBytes("attacker-enclave-key"));

  // Reconstruct the update proof like a CI would (b2 on top of b1's state).
  chain::FullNode replay_node(rig.config, rig.registry);
  ASSERT_TRUE(replay_node.SubmitBlock(b1).ok());
  auto exec = chain::ExecuteBlockTxs(b2.txs, *rig.registry, replay_node.State());
  ASSERT_TRUE(exec.ok());
  StateUpdateProof proof = BuildStateUpdateProof(exec.value().reads,
                                                 exec.value().writes,
                                                 replay_node.State());

  // Genuine prev cert: accepted.
  EXPECT_TRUE(program.SigGen(b1.header, cert1.value(), b2, proof).ok());

  // Tampered signature in the previous certificate: rejected.
  BlockCertificate bad_sig = cert1.value();
  bad_sig.sig.s = crypto::Curve().Fn().Add(bad_sig.sig.s, crypto::U256(1));
  EXPECT_FALSE(program.SigGen(b1.header, bad_sig, b2, proof).ok());

  // Certificate for the wrong block digest: rejected.
  BlockCertificate wrong_digest = cert1.value();
  wrong_digest.digest[0] ^= 1;
  EXPECT_FALSE(program.SigGen(b1.header, wrong_digest, b2, proof).ok());

  // Missing prev certificate for a non-genesis block: rejected.
  EXPECT_FALSE(program.SigGen(b1.header, std::nullopt, b2, proof).ok());

  // Report from a *different* enclave program (wrong measurement): rejected.
  BlockCertificate wrong_enclave = cert1.value();
  sgxsim::Enclave other("impostor-program", "9.9");
  wrong_enclave.report = sgxsim::AttestationService::Attest(
      other.MakeQuote(KeyBindingReportData(wrong_enclave.pk_enc)));
  EXPECT_FALSE(program.SigGen(b1.header, wrong_enclave, b2, proof).ok());

  // Tampered read set value: rejected (Merkle proof check).
  StateUpdateProof bad_reads = proof;
  if (!bad_reads.read_set.empty()) {
    bad_reads.read_set.begin()->second += 1;
    EXPECT_FALSE(program.SigGen(b1.header, cert1.value(), b2, bad_reads).ok());
  }

  // Incomplete read set: rejected (replay reads outside the set).
  StateUpdateProof missing_reads = proof;
  if (!missing_reads.read_set.empty()) {
    missing_reads.read_set.erase(missing_reads.read_set.begin());
    EXPECT_FALSE(program.SigGen(b1.header, cert1.value(), b2, missing_reads).ok());
  }
}

TEST(EnclaveSecurityTest, EnclaveRefusesWrongContractCode) {
  TestRig rig;
  EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(rig.config).header.Hash();
  ec.registry_digest = rig.registry->Digest();
  ec.difficulty_bits = rig.config.difficulty_bits;
  auto wrong_registry = workloads::MakeBlockbenchRegistry(3);  // different code set
  EXPECT_THROW(CertEnclaveProgram(ec, wrong_registry, StrBytes("seed")),
               std::invalid_argument);
}

// --- Superlight client (Alg. 3) ---

TEST(SuperlightTest, RejectsCertificateFromWrongEnclave) {
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  auto cert = rig.ci->ProcessBlock(blk);
  ASSERT_TRUE(cert.ok());

  Hash256 other_measurement = sgxsim::ComputeMeasurement("other", "1.0");
  SuperlightClient paranoid(other_measurement);
  EXPECT_FALSE(paranoid.ValidateAndAccept(blk.header, cert.value()).ok());
}

TEST(SuperlightTest, RejectsMismatchedHeader) {
  TestRig rig;
  chain::Block b1 = rig.NextBlock();
  auto cert1 = rig.ci->ProcessBlock(b1);
  ASSERT_TRUE(cert1.ok());
  chain::Block b2 = rig.NextBlock();
  auto cert2 = rig.ci->ProcessBlock(b2);
  ASSERT_TRUE(cert2.ok());

  SuperlightClient client(ExpectedEnclaveMeasurement());
  // Certificate of block 1 presented with block 2's header.
  EXPECT_FALSE(client.ValidateAndAccept(b2.header, cert1.value()).ok());
  EXPECT_TRUE(client.ValidateAndAccept(b2.header, cert2.value()).ok());
}

TEST(SuperlightTest, ChainSelectionRejectsStaleHeaders) {
  TestRig rig;
  chain::Block b1 = rig.NextBlock();
  auto cert1 = rig.ci->ProcessBlock(b1);
  chain::Block b2 = rig.NextBlock();
  auto cert2 = rig.ci->ProcessBlock(b2);
  ASSERT_TRUE(cert1.ok() && cert2.ok());

  SuperlightClient client(ExpectedEnclaveMeasurement());
  ASSERT_TRUE(client.ValidateAndAccept(b2.header, cert2.value()).ok());
  // An older (lower-height) certified header loses chain selection.
  EXPECT_FALSE(client.ValidateAndAccept(b1.header, cert1.value()).ok());
  EXPECT_EQ(client.Height(), 2u);
}

TEST(SuperlightTest, RejectsForgedSignature) {
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  auto cert = rig.ci->ProcessBlock(blk);
  ASSERT_TRUE(cert.ok());

  BlockCertificate forged = cert.value();
  forged.sig.r = crypto::Curve().Fp().Add(forged.sig.r, crypto::U256(1));
  SuperlightClient client(ExpectedEnclaveMeasurement());
  EXPECT_FALSE(client.ValidateAndAccept(blk.header, forged).ok());
}

TEST(SuperlightTest, RejectsSelfSignedCertificateWithoutAttestation) {
  // An attacker with their own key pair but no genuine enclave: they cannot
  // produce an IAS report binding their key to the pinned measurement.
  TestRig rig;
  chain::Block blk = rig.NextBlock();
  crypto::SecretKey attacker = crypto::SecretKey::FromSeed(StrBytes("attacker"));

  BlockCertificate forged;
  forged.pk_enc = attacker.Public();
  forged.digest = blk.header.Hash();
  forged.sig = attacker.Sign(forged.digest);
  // Best effort: quote claims the right measurement but the IAS never signed
  // this binding — simulate by self-attesting a mismatching report.
  sgxsim::Enclave fake(kEnclaveProgramName, kEnclaveProgramVersion);
  forged.report = sgxsim::AttestationService::Attest(
      fake.MakeQuote(Hash256()));  // wrong report_data binding
  SuperlightClient client(ExpectedEnclaveMeasurement());
  EXPECT_FALSE(client.ValidateAndAccept(blk.header, forged).ok());
}

TEST(SuperlightTest, StorageIsConstantAcrossChainGrowth) {
  TestRig rig;
  SuperlightClient client(ExpectedEnclaveMeasurement());
  std::size_t storage_after_first = 0;
  for (int i = 0; i < 8; ++i) {
    chain::Block blk = rig.NextBlock(2);
    auto cert = rig.ci->ProcessBlock(blk);
    ASSERT_TRUE(cert.ok());
    ASSERT_TRUE(client.ValidateAndAccept(blk.header, cert.value()).ok());
    if (i == 0) storage_after_first = client.StorageBytes();
  }
  EXPECT_EQ(client.StorageBytes(), storage_after_first);
}

}  // namespace
}  // namespace dcert::core
