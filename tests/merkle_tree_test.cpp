// Binary Merkle Hash Tree: roots, audit paths, tamper rejection.
#include "mht/merkle_tree.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace dcert::mht {
namespace {

std::vector<Hash256> MakeLeaves(int n) {
  std::vector<Hash256> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(crypto::Sha256::Digest(StrBytes("leaf-" + std::to_string(i))));
  }
  return out;
}

TEST(MerkleTreeTest, EmptyTreeHasFixedRoot) {
  MerkleTree a({});
  MerkleTree b({});
  EXPECT_EQ(a.Root(), b.Root());
  EXPECT_EQ(a.LeafCount(), 0u);
}

TEST(MerkleTreeTest, SingleLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.Root(), MerkleTree::LeafHash(leaves[0]));
  MerklePath path = tree.Prove(0);
  EXPECT_TRUE(path.steps.empty());
  EXPECT_TRUE(MerkleTree::VerifyPath(tree.Root(), leaves[0], path).ok());
}

TEST(MerkleTreeTest, RootDependsOnEveryLeaf) {
  auto leaves = MakeLeaves(8);
  Hash256 root = MerkleTree(leaves).Root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(MerkleTree(mutated).Root(), root) << "leaf " << i;
  }
}

TEST(MerkleTreeTest, RootDependsOnLeafOrder) {
  auto leaves = MakeLeaves(4);
  Hash256 root = MerkleTree(leaves).Root();
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(MerkleTree(leaves).Root(), root);
}

TEST(MerkleTreeTest, ProveOutOfRangeThrows) {
  MerkleTree tree(MakeLeaves(3));
  EXPECT_THROW(tree.Prove(3), std::out_of_range);
}

TEST(MerkleTreeTest, WrongLeafRejected) {
  auto leaves = MakeLeaves(6);
  MerkleTree tree(leaves);
  MerklePath path = tree.Prove(2);
  EXPECT_TRUE(MerkleTree::VerifyPath(tree.Root(), leaves[2], path).ok());
  EXPECT_FALSE(MerkleTree::VerifyPath(tree.Root(), leaves[3], path).ok());
}

TEST(MerkleTreeTest, TamperedPathRejected) {
  auto leaves = MakeLeaves(6);
  MerkleTree tree(leaves);
  MerklePath path = tree.Prove(4);
  ASSERT_FALSE(path.steps.empty());
  path.steps[0].sibling[5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::VerifyPath(tree.Root(), leaves[4], path).ok());
}

TEST(MerkleTreeTest, PathSerializationRoundTrip) {
  auto leaves = MakeLeaves(13);
  MerkleTree tree(leaves);
  MerklePath path = tree.Prove(7);
  Encoder enc;
  path.Encode(enc);
  Decoder dec(enc.bytes());
  MerklePath decoded = MerklePath::Decode(dec);
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_TRUE(MerkleTree::VerifyPath(tree.Root(), leaves[7], decoded).ok());
}

TEST(MerkleTreeTest, ComputeRootMatchesTree) {
  auto leaves = MakeLeaves(10);
  EXPECT_EQ(MerkleTree::ComputeRoot(leaves), MerkleTree(leaves).Root());
}

// Property sweep: every leaf of trees of many sizes (including awkward odd
// shapes) has a valid audit path, and no leaf validates at another's path.
class MerkleTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MerkleTreeSweep, AllLeavesProvable) {
  const int n = GetParam();
  auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  for (int i = 0; i < n; ++i) {
    MerklePath path = tree.Prove(static_cast<std::size_t>(i));
    EXPECT_TRUE(
        MerkleTree::VerifyPath(tree.Root(), leaves[static_cast<std::size_t>(i)], path)
            .ok())
        << "n=" << n << " i=" << i;
    if (n > 1) {
      const auto& other = leaves[static_cast<std::size_t>((i + 1) % n)];
      EXPECT_FALSE(MerkleTree::VerifyPath(tree.Root(), other, path).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleTreeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33,
                                           64, 100));

}  // namespace
}  // namespace dcert::mht
