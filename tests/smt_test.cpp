// Sparse Merkle Tree: root semantics, multiproofs, and the stateless
// verify/update path the enclave depends on.
#include "mht/smt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/sha256.h"

namespace dcert::mht {
namespace {

Hash256 Key(const std::string& s) { return crypto::Sha256::Digest(StrBytes(s)); }
Hash256 Val(const std::string& s) {
  return crypto::Sha256::Digest(StrBytes("value:" + s));
}

TEST(SmtTest, EmptyTreeRootIsDefault) {
  SparseMerkleTree tree;
  EXPECT_EQ(tree.Root(), SparseMerkleTree::DefaultHash(0));
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.Get(Key("missing")).IsZero());
}

TEST(SmtTest, InsertGetRoundTrip) {
  SparseMerkleTree tree;
  tree.Update(Key("a"), Val("a"));
  tree.Update(Key("b"), Val("b"));
  EXPECT_EQ(tree.Get(Key("a")), Val("a"));
  EXPECT_EQ(tree.Get(Key("b")), Val("b"));
  EXPECT_TRUE(tree.Get(Key("c")).IsZero());
  EXPECT_EQ(tree.Size(), 2u);
}

TEST(SmtTest, OverwriteChangesRootAndValue) {
  SparseMerkleTree tree;
  tree.Update(Key("k"), Val("v1"));
  Hash256 r1 = tree.Root();
  tree.Update(Key("k"), Val("v2"));
  EXPECT_NE(tree.Root(), r1);
  EXPECT_EQ(tree.Get(Key("k")), Val("v2"));
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(SmtTest, DeleteRestoresPreviousRoot) {
  SparseMerkleTree tree;
  tree.Update(Key("x"), Val("x"));
  Hash256 with_x = tree.Root();
  tree.Update(Key("y"), Val("y"));
  tree.Update(Key("y"), Hash256());  // zero value deletes
  EXPECT_EQ(tree.Root(), with_x);
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_TRUE(tree.Get(Key("y")).IsZero());

  tree.Update(Key("x"), Hash256());
  EXPECT_EQ(tree.Root(), SparseMerkleTree::DefaultHash(0));
  EXPECT_EQ(tree.Size(), 0u);
}

TEST(SmtTest, RootIsInsertionOrderIndependent) {
  std::vector<std::pair<Hash256, Hash256>> kvs;
  for (int i = 0; i < 50; ++i) {
    kvs.emplace_back(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SparseMerkleTree forward, backward;
  for (const auto& [k, v] : kvs) forward.Update(k, v);
  for (auto it = kvs.rbegin(); it != kvs.rend(); ++it) {
    backward.Update(it->first, it->second);
  }
  EXPECT_EQ(forward.Root(), backward.Root());
}

TEST(SmtTest, MembershipProofVerifies) {
  SparseMerkleTree tree;
  for (int i = 0; i < 20; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SmtMultiProof proof = tree.ProveKeys({Key("k3"), Key("k7")});
  std::map<Hash256, Hash256> leaves{{Key("k3"), Val("v3")}, {Key("k7"), Val("v7")}};
  EXPECT_EQ(SparseMerkleTree::ComputeRootFromProof(proof, leaves), tree.Root());
}

TEST(SmtTest, NonMembershipProofVerifies) {
  SparseMerkleTree tree;
  for (int i = 0; i < 20; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SmtMultiProof proof = tree.ProveKeys({Key("absent")});
  std::map<Hash256, Hash256> leaves{{Key("absent"), Hash256()}};
  EXPECT_EQ(SparseMerkleTree::ComputeRootFromProof(proof, leaves), tree.Root());
}

TEST(SmtTest, WrongValueDoesNotReconstructRoot) {
  SparseMerkleTree tree;
  tree.Update(Key("a"), Val("a"));
  tree.Update(Key("b"), Val("b"));
  SmtMultiProof proof = tree.ProveKeys({Key("a")});
  std::map<Hash256, Hash256> lie{{Key("a"), Val("not-a")}};
  EXPECT_NE(SparseMerkleTree::ComputeRootFromProof(proof, lie), tree.Root());
  std::map<Hash256, Hash256> absent_lie{{Key("a"), Hash256()}};
  EXPECT_NE(SparseMerkleTree::ComputeRootFromProof(proof, absent_lie), tree.Root());
}

TEST(SmtTest, TamperedProofDoesNotReconstructRoot) {
  SparseMerkleTree tree;
  for (int i = 0; i < 10; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SmtMultiProof proof = tree.ProveKeys({Key("k0")});
  ASSERT_FALSE(proof.siblings.empty());
  proof.siblings.begin()->second[0] ^= 1;
  std::map<Hash256, Hash256> leaves{{Key("k0"), Val("v0")}};
  EXPECT_NE(SparseMerkleTree::ComputeRootFromProof(proof, leaves), tree.Root());
}

TEST(SmtTest, MaliciousSiblingCannotOverrideCoveredSubtree) {
  // A proof entry that conflicts with a frontier-computed node is ignored.
  SparseMerkleTree tree;
  tree.Update(Key("a"), Val("a"));
  tree.Update(Key("b"), Val("b"));
  SmtMultiProof proof = tree.ProveKeys({Key("a"), Key("b")});
  SmtMultiProof dirty = proof;
  // Inject garbage entries at every level along key a's path.
  for (int lvl = 1; lvl <= 8; ++lvl) {
    SmtNodeId id{static_cast<std::uint16_t>(lvl), Hash256()};
    dirty.siblings[id] = Val("garbage");
  }
  std::map<Hash256, Hash256> leaves{{Key("a"), Val("a")}, {Key("b"), Val("b")}};
  // The genuine leaves must still reconstruct the true root (garbage entries
  // that do not sit on required sibling positions are simply unused, and
  // covered positions prefer the frontier).
  Hash256 root = SparseMerkleTree::ComputeRootFromProof(proof, leaves);
  EXPECT_EQ(root, tree.Root());
}

TEST(SmtTest, StatelessUpdateMatchesInTreeUpdate) {
  SparseMerkleTree tree;
  for (int i = 0; i < 30; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  Hash256 old_root = tree.Root();

  // The enclave-style flow: prove the touched keys (one existing, one new),
  // verify old values, then recompute the root with new values.
  std::vector<Hash256> touched{Key("k5"), Key("new-key")};
  SmtMultiProof proof = tree.ProveKeys(touched);
  std::map<Hash256, Hash256> old_leaves{{Key("k5"), Val("v5")},
                                        {Key("new-key"), Hash256()}};
  ASSERT_EQ(SparseMerkleTree::ComputeRootFromProof(proof, old_leaves), old_root);

  std::map<Hash256, Hash256> new_leaves{{Key("k5"), Val("v5-updated")},
                                        {Key("new-key"), Val("fresh")}};
  Hash256 predicted = SparseMerkleTree::ComputeRootFromProof(proof, new_leaves);

  tree.Update(Key("k5"), Val("v5-updated"));
  tree.Update(Key("new-key"), Val("fresh"));
  EXPECT_EQ(predicted, tree.Root());
}

TEST(SmtTest, StatelessDeleteMatchesInTreeDelete) {
  SparseMerkleTree tree;
  for (int i = 0; i < 10; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SmtMultiProof proof = tree.ProveKeys({Key("k4")});
  std::map<Hash256, Hash256> deleted{{Key("k4"), Hash256()}};
  Hash256 predicted = SparseMerkleTree::ComputeRootFromProof(proof, deleted);
  tree.Update(Key("k4"), Hash256());
  EXPECT_EQ(predicted, tree.Root());
}

TEST(SmtTest, ProofSerializationRoundTrip) {
  SparseMerkleTree tree;
  for (int i = 0; i < 25; ++i) {
    tree.Update(Key("k" + std::to_string(i)), Val("v" + std::to_string(i)));
  }
  SmtMultiProof proof = tree.ProveKeys({Key("k1"), Key("k2"), Key("gone")});
  Bytes wire = proof.Serialize();
  auto decoded = SmtMultiProof::Deserialize(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().siblings, proof.siblings);

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(SmtMultiProof::Deserialize(truncated).ok());
}

TEST(SmtTest, DefaultHashLevelsChain) {
  // defaults[l] = H(internal, defaults[l+1], defaults[l+1]) — spot check via
  // an insert/delete cycle returning to the default root, plus bounds.
  EXPECT_THROW(SparseMerkleTree::DefaultHash(-1), std::out_of_range);
  EXPECT_THROW(SparseMerkleTree::DefaultHash(SparseMerkleTree::kDepth + 1),
               std::out_of_range);
  EXPECT_NE(SparseMerkleTree::DefaultHash(0),
            SparseMerkleTree::DefaultHash(SparseMerkleTree::kDepth));
}

// Randomized property sweep: a shadow std::map is the oracle for Get and for
// multiproof contents across interleaved inserts, overwrites, and deletes.
class SmtRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmtRandomSweep, MatchesShadowModel) {
  Rng rng(GetParam());
  SparseMerkleTree tree;
  std::map<Hash256, Hash256> shadow;
  std::vector<Hash256> universe;
  for (int i = 0; i < 40; ++i) universe.push_back(Key("u" + std::to_string(i)));

  for (int step = 0; step < 300; ++step) {
    const Hash256& k = universe[rng.NextBelow(universe.size())];
    std::uint64_t action = rng.NextBelow(3);
    if (action == 0) {
      tree.Update(k, Hash256());
      shadow.erase(k);
    } else {
      Hash256 v = Val("r" + std::to_string(rng.NextU64()));
      tree.Update(k, v);
      shadow[k] = v;
    }
  }
  EXPECT_EQ(tree.Size(), shadow.size());
  for (const Hash256& k : universe) {
    auto it = shadow.find(k);
    EXPECT_EQ(tree.Get(k), it == shadow.end() ? Hash256() : it->second);
  }
  // Multiproof over a random subset (mixing present and absent keys).
  std::vector<Hash256> subset;
  std::map<Hash256, Hash256> leaves;
  for (int i = 0; i < 8; ++i) {
    const Hash256& k = universe[rng.NextBelow(universe.size())];
    subset.push_back(k);
    auto it = shadow.find(k);
    leaves[k] = it == shadow.end() ? Hash256() : it->second;
  }
  SmtMultiProof proof = tree.ProveKeys(subset);
  EXPECT_EQ(SparseMerkleTree::ComputeRootFromProof(proof, leaves), tree.Root());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// The batched (multi-buffer hash) rehash and the legacy per-node rehash must
// be observationally identical: same roots, byte-identical serialized
// multiproofs, across rounds of overlapping inserts, overwrites, and
// deletes — with and without a thread pool sharding the levels.
TEST(SmtTest, BatchedAndPerNodeRehashAreByteIdentical) {
  Rng rng(0xD0CE);
  common::ThreadPool pool(2);
  SparseMerkleTree per_node;
  SparseMerkleTree batched;
  SparseMerkleTree batched_pooled;
  std::vector<Hash256> universe;
  for (int i = 0; i < 120; ++i) universe.push_back(Key("eq" + std::to_string(i)));

  for (int round = 0; round < 6; ++round) {
    std::map<Hash256, Hash256> entries;
    const std::size_t writes = 10 + rng.NextBelow(60);
    for (std::size_t w = 0; w < writes; ++w) {
      const Hash256& k = universe[rng.NextBelow(universe.size())];
      // A third of the writes are deletes (zero value tombstones).
      entries[k] = rng.NextBelow(3) == 0
                       ? Hash256()
                       : Val("eqv" + std::to_string(rng.NextU64()));
    }
    per_node.UpdateBatchWith(entries, pool,
                             SparseMerkleTree::RehashMode::kPerNode);
    batched.UpdateBatch(entries);
    batched_pooled.UpdateBatchWith(entries, pool,
                                   SparseMerkleTree::RehashMode::kBatched);
    ASSERT_EQ(per_node.Root(), batched.Root()) << "round " << round;
    ASSERT_EQ(per_node.Root(), batched_pooled.Root()) << "round " << round;

    std::vector<Hash256> subset;
    for (int i = 0; i < 12; ++i) {
      subset.push_back(universe[rng.NextBelow(universe.size())]);
    }
    EXPECT_EQ(per_node.ProveKeys(subset).Serialize(),
              batched.ProveKeys(subset).Serialize())
        << "round " << round;
  }
}

}  // namespace
}  // namespace dcert::mht
