// The unified chaos harness: one seeded ChaosPlan composes the network
// plane (FaultInjectingTransport between the client and one replica), the
// disk plane (IoFaultInjector under a RecordLog and a CheckpointStore), and
// the process-crash plane (CrashPoints on the log's append sites), while a
// misbehaving replica serves certified-looking-but-wrong replies. The soak's
// central claims: the verifying client NEVER accepts an unverified reply
// (every answer it returns equals the clean-fleet truth), the misbehaving
// replica ends quarantined with serialized evidence, durable state survives
// every injected disk fault and crash, and once the weather clears the fleet
// converges back to all-breakers-closed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chain/node.h"
#include "ckpt/checkpoint.h"
#include "common/crash_point.h"
#include "common/io_fault.h"
#include "common/record_log.h"
#include "dcert/issuer.h"
#include "fleet/chaos.h"
#include "fleet/fleet_client.h"
#include "fleet/health.h"
#include "fleet/shard_map.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "svc/fault_transport.h"
#include "svc/protocol.h"
#include "svc/sp_server.h"
#include "workloads/workloads.h"

namespace dcert::fleet {
namespace {

std::uint64_t SoakCycles(std::uint64_t default_cycles) {
  if (const char* env = std::getenv("DCERT_CHAOS_SOAK_CYCLES")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return default_cycles;
}

/// A small certified chain shared by the tests, plus one account known to be
/// written in the LAST block.
struct FleetChain {
  std::vector<svc::AnnounceRequest> announcements;
  std::uint64_t hot_account = 0;
  std::uint64_t tip_height = 0;

  explicit FleetChain(int blocks, std::size_t txs = 8) {
    chain::ChainConfig config;
    config.difficulty_bits = 2;
    auto registry = workloads::MakeBlockbenchRegistry(1);
    core::CertificateIssuer ci(config, registry);
    auto hist = std::make_shared<query::HistoricalIndex>("historical");
    ci.AttachIndex(hist);
    chain::FullNode node(config, registry);
    chain::Miner miner(node);
    workloads::AccountPool pool(4, 77);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    workloads::WorkloadGenerator gen(params, pool);

    for (int i = 0; i < blocks; ++i) {
      auto block = miner.MineBlock(gen.NextBlockTxs(txs),
                                   1700000000 + node.Height() * 15);
      if (!block.ok()) throw std::runtime_error("mine: " + block.message());
      if (Status st = node.SubmitBlock(block.value()); !st) {
        throw std::runtime_error("submit: " + st.message());
      }
      auto icerts = ci.ProcessBlockHierarchical(block.value());
      if (!icerts.ok()) throw std::runtime_error("certify: " + icerts.message());
      svc::AnnounceRequest ann;
      ann.block = block.value();
      ann.block_cert = *ci.LatestCert();
      ann.index_digest = hist->CurrentDigest();
      ann.index_cert = icerts.value()[0];
      announcements.push_back(std::move(ann));
    }
    auto last_writes =
        query::ExtractHistoricalWrites(announcements.back().block);
    if (last_writes.empty()) {
      throw std::runtime_error("last block produced no historical writes");
    }
    hot_account = last_writes.front().account_word;
    tip_height = announcements.back().block.header.height;
  }
};

const FleetChain& Chain() {
  static FleetChain chain(6);
  return chain;
}

ShardMap MustCreate(const ShardMapConfig& cfg) {
  auto map = ShardMap::Create(cfg);
  if (!map.ok()) throw std::runtime_error(map.message());
  return map.value();
}

/// A Byzantine decorator: query replies pass through with their claimed tip
/// height inflated, so the proof still parses but the replica is provably
/// claiming a tip it cannot certify (the client's tip fetch comes back
/// lower => "replica tip went backwards" misbehavior, not a benign fault).
class TamperTransport final : public svc::ClientTransport {
 public:
  TamperTransport(std::unique_ptr<svc::ClientTransport> inner,
                  std::shared_ptr<std::atomic<std::uint64_t>> tampered)
      : inner_(std::move(inner)), tampered_(std::move(tampered)) {}

  using svc::ClientTransport::Call;
  Result<Bytes> Call(ByteView request,
                     std::chrono::milliseconds deadline) override {
    auto reply = inner_->Call(request, deadline);
    if (!reply.ok()) return reply;
    auto env = svc::DecodeReplyEnvelope(reply.value());
    if (!env.ok() || env.value().code != svc::Code::kOk) return reply;
    auto body = svc::DecodeQueryBody(env.value().body);
    if (!body.ok()) return reply;  // tip/stats/map replies pass untouched
    tampered_->fetch_add(1);
    return Result<Bytes>(
        svc::EncodeQueryReply(body.value().first + 1000, body.value().second));
  }

 private:
  std::unique_ptr<svc::ClientTransport> inner_;
  std::shared_ptr<std::atomic<std::uint64_t>> tampered_;
};

/// In-process shard fleet, every replica holding the full chain.
struct LiveFleet {
  ShardMap map;
  std::vector<std::vector<std::unique_ptr<svc::LoopbackTransport>>> transports;
  std::vector<std::vector<std::unique_ptr<svc::SpServer>>> servers;

  explicit LiveFleet(const ShardMapConfig& cfg) : map(MustCreate(cfg)) {
    const auto& chain = Chain();
    transports.resize(map.TotalShards());
    servers.resize(map.TotalShards());
    for (std::uint32_t s = 0; s < map.TotalShards(); ++s) {
      for (std::uint32_t r = 0; r < map.Replicas(); ++r) {
        svc::SpServerConfig config;
        config.shard = map.AssignmentFor(s);
        config.shard_map = map.Serialize();
        auto server = std::make_unique<svc::SpServer>(config);
        auto transport = std::make_unique<svc::LoopbackTransport>();
        Status st = server->Serve(*transport);
        if (!st.ok()) throw std::runtime_error(st.message());
        for (const auto& ann : chain.announcements) {
          if (Status ast = server->Announce(ann); !ast) {
            throw std::runtime_error(ast.message());
          }
        }
        transports[s].push_back(std::move(transport));
        servers[s].push_back(std::move(server));
      }
    }
  }

  ~LiveFleet() {
    for (auto& per_shard : servers) {
      for (auto& server : per_shard) server->Shutdown();
    }
  }

  FleetClient::BackendConnector DirectConnector() {
    return [this](std::uint32_t s, std::uint32_t r) -> svc::Connector {
      svc::LoopbackTransport* lb = transports[s][r].get();
      return [lb] {
        return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
      };
    };
  }
};

/// Disarms every global injector on scope exit so a failing soak can never
/// poison later tests in the binary.
struct InjectorGuard {
  ~InjectorGuard() {
    common::CrashPoints::Global().Disarm();
    common::IoFaultInjector::Global().Disarm();
  }
};

// ---------------------------------------------------------------------------
// ChaosPlan determinism
// ---------------------------------------------------------------------------

TEST(ChaosPlanTest, SameSeedSamePlanDifferentPlanesDiffer) {
  ChaosPlanConfig cfg;
  cfg.seed = 42;
  ChaosPlan a(cfg);
  ChaosPlan b(cfg);

  // Same seed, same stream: identical network schedules.
  EXPECT_EQ(a.NetworkFaults(7).seed, b.NetworkFaults(7).seed);
  EXPECT_EQ(a.DiskFaults().seed, b.DiskFaults().seed);
  // Different streams and different planes draw from decorrelated seeds.
  EXPECT_NE(a.NetworkFaults(1).seed, a.NetworkFaults(2).seed);
  EXPECT_NE(a.NetworkFaults(1).seed, a.DiskFaults().seed);

  // The crash stream replays: two plans with the same seed pick the same
  // site sequence.
  const std::vector<std::string> sites = {"x.a", "x.b", "x.c"};
  cfg.crash_rate = 1.0;
  ChaosPlan c(cfg);
  ChaosPlan d(cfg);
  for (int i = 0; i < 16; ++i) {
    const auto cc = c.NextCrash(sites);
    const auto dc = d.NextCrash(sites);
    ASSERT_TRUE(cc.arm);
    EXPECT_EQ(cc.site, dc.site);
    EXPECT_EQ(cc.countdown, dc.countdown);
  }
}

// ---------------------------------------------------------------------------
// Breaker probe admission
// ---------------------------------------------------------------------------

TEST(ChaosHarnessTest, RoutableNeverConsumesProbeAndAbandonedProbeReadmits) {
  HealthPolicy policy;
  policy.failure_threshold = 1;
  policy.open_base_backoff = std::chrono::milliseconds(1);
  policy.open_max_backoff = std::chrono::milliseconds(1);
  policy.probe_timeout = std::chrono::milliseconds(20);
  FleetHealth health(policy);

  health.ReportFailure(0, 0);
  EXPECT_EQ(health.State(0, 0), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // past open_until

  // Routable is how candidate lists are built: it may be called any number
  // of times for replicas that are never queried without consuming the
  // single half-open probe admission.
  EXPECT_TRUE(health.Routable(0, 0));
  EXPECT_TRUE(health.Routable(0, 0));
  EXPECT_EQ(health.State(0, 0), BreakerState::kOpen);  // unchanged

  // AllowRequest consumes the probe; a second caller is blocked.
  EXPECT_TRUE(health.AllowRequest(0, 0));
  EXPECT_EQ(health.State(0, 0), BreakerState::kHalfOpen);
  EXPECT_FALSE(health.AllowRequest(0, 0));
  EXPECT_FALSE(health.Routable(0, 0));

  // The probe outcome is never reported (caller abandoned it). After the
  // probe timeout another probe is admitted instead of the backend staying
  // wedged half-open forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(health.Routable(0, 0));
  EXPECT_TRUE(health.AllowRequest(0, 0));
  health.ReportSuccess(0, 0, 100);
  EXPECT_EQ(health.State(0, 0), BreakerState::kClosed);
  EXPECT_TRUE(health.AllClosed());
}

// ---------------------------------------------------------------------------
// Evidence persistence + operator release
// ---------------------------------------------------------------------------

TEST(ChaosHarnessTest, EvidenceFilePersistsQuarantineAndReleaseReadmits) {
  const std::string path = ::testing::TempDir() + "chaos_evidence.bin";
  std::remove(path.c_str());

  MisbehaviorEvidence ev;
  ev.map_version = 3;
  ev.shard_id = 1;
  ev.replica = 2;
  ev.op = static_cast<std::uint8_t>(svc::Op::kHistorical);
  ev.account = 99;
  ev.from_height = 1;
  ev.to_height = 6;
  ev.reply_digest[0] = 0xAB;
  ev.offending_cert = Bytes{1, 2, 3};
  ev.verdict = "fleet: query proof: digest mismatch";

  {
    FleetHealth health;
    ASSERT_TRUE(health.AttachEvidenceFile(path).ok());  // missing file = empty
    health.ReportMisbehavior(ev);
    EXPECT_TRUE(health.Quarantined(2));
    EXPECT_FALSE(health.AllowRequest(1, 2));
    EXPECT_TRUE(health.AllowRequest(1, 0));
  }

  // A fresh client attaching the same file inherits the quarantine: the
  // decision survives restarts until an operator releases it.
  {
    FleetHealth health;
    ASSERT_TRUE(health.AttachEvidenceFile(path).ok());
    EXPECT_TRUE(health.Quarantined(2));
    const auto records = health.Evidence();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].verdict, ev.verdict);
    EXPECT_EQ(records[0].reply_digest, ev.reply_digest);
    EXPECT_EQ(records[0].offending_cert, ev.offending_cert);

    health.Release(2);
    EXPECT_FALSE(health.Quarantined(2));
    EXPECT_TRUE(health.AllowRequest(1, 2));
  }

  // The operator-release path dcertctl uses: rewrite the file without the
  // released replica's records.
  auto loaded = LoadEvidenceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  ASSERT_EQ(loaded.value().size(), 1u);
  ASSERT_TRUE(WriteEvidenceFile(path, {}).ok());
  {
    FleetHealth health;
    ASSERT_TRUE(health.AttachEvidenceFile(path).ok());
    EXPECT_FALSE(health.Quarantined(2));
  }
  std::remove(path.c_str());
}

TEST(ChaosHarnessTest, EvidenceSerializationRoundTripsAndRejectsGarbage) {
  MisbehaviorEvidence ev;
  ev.map_version = ~std::uint64_t{0};
  ev.shard_id = 7;
  ev.replica = 1;
  ev.op = static_cast<std::uint8_t>(svc::Op::kAggregate);
  ev.account = 0x123456789abcdefULL;
  ev.from_height = 10;
  ev.to_height = 20;
  for (std::size_t i = 0; i < ev.reply_digest.size(); ++i) {
    ev.reply_digest[i] = static_cast<std::uint8_t>(i * 3);
  }
  ev.offending_cert = Bytes(100, 0x5A);
  ev.verdict = "fleet: index cert: signature invalid";

  const Bytes wire = ev.Serialize();
  auto back = MisbehaviorEvidence::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().map_version, ev.map_version);
  EXPECT_EQ(back.value().shard_id, ev.shard_id);
  EXPECT_EQ(back.value().replica, ev.replica);
  EXPECT_EQ(back.value().op, ev.op);
  EXPECT_EQ(back.value().account, ev.account);
  EXPECT_EQ(back.value().from_height, ev.from_height);
  EXPECT_EQ(back.value().to_height, ev.to_height);
  EXPECT_EQ(back.value().reply_digest, ev.reply_digest);
  EXPECT_EQ(back.value().offending_cert, ev.offending_cert);
  EXPECT_EQ(back.value().verdict, ev.verdict);
  EXPECT_EQ(back.value().Serialize(), wire);

  for (std::size_t cut : {std::size_t{0}, std::size_t{8}, wire.size() - 1}) {
    Bytes trunc(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(MisbehaviorEvidence::Deserialize(trunc).ok()) << cut;
  }
}

// ---------------------------------------------------------------------------
// The composed soak
// ---------------------------------------------------------------------------

TEST(ChaosSoakTest, ComposedFaultsAcceptZeroUnverifiedAndConvergeClosed) {
  InjectorGuard guard;
  const std::uint64_t cycles = SoakCycles(500);
  const auto& chain = Chain();

  ChaosPlanConfig plan_cfg;
  plan_cfg.seed = 0xC4A05;
  plan_cfg.net_fault_rate = 0.08;
  plan_cfg.disk_fault_rate = 0.15;
  plan_cfg.crash_rate = 0.1;
  ChaosPlan plan(plan_cfg);

  // 2 key shards x 3 replicas. Replica 0 sits behind the plan's seeded
  // network faults (benign plane), replica 2 actively lies (Byzantine
  // plane), replica 1 is clean.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.key_shards = 2;
  cfg.replicas = 3;
  LiveFleet fleet(cfg);
  FleetClient truth(fleet.map, fleet.DirectConnector());

  auto net_counters = std::make_shared<svc::FaultCounters>();
  auto tampered = std::make_shared<std::atomic<std::uint64_t>>(0);

  FleetClientConfig client_cfg;
  client_cfg.retry.max_attempts = 3;
  client_cfg.retry.call_deadline = std::chrono::milliseconds(1000);
  client_cfg.retry.initial_backoff = std::chrono::milliseconds(1);
  client_cfg.retry.max_backoff = std::chrono::milliseconds(8);
  client_cfg.hedge = true;  // hedged subqueries run under chaos too
  client_cfg.hedge_min_delay_us = 200;
  client_cfg.hedge_max_delay_us = 5000;
  client_cfg.health_policy.failure_threshold = 3;
  client_cfg.health_policy.open_base_backoff = std::chrono::milliseconds(5);
  client_cfg.health_policy.open_max_backoff = std::chrono::milliseconds(50);

  const std::string evidence_path = ::testing::TempDir() + "chaos_soak_ev.bin";
  std::remove(evidence_path.c_str());

  FleetClient client(
      fleet.map,
      [&fleet, &plan, &net_counters, &tampered](
          std::uint32_t s, std::uint32_t r) -> svc::Connector {
        svc::LoopbackTransport* lb = fleet.transports[s][r].get();
        svc::Connector dial = [lb] {
          return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
        };
        if (r == 0) {
          return svc::FaultyConnector(std::move(dial),
                                      plan.NetworkFaults(s * 16 + r),
                                      net_counters);
        }
        if (r == 2) {
          return [dial, tampered] {
            auto conn = dial();
            if (!conn.ok()) return conn;
            return Result<std::unique_ptr<svc::ClientTransport>>(
                std::make_unique<TamperTransport>(std::move(conn.value()),
                                                  tampered));
          };
        }
        return dial;
      },
      client_cfg);
  ASSERT_TRUE(client.Health()->AttachEvidenceFile(evidence_path).ok());

  // Disk plane: a record log and a checkpoint store churned alongside the
  // query traffic. The checkpoint is a genuine export, sealed clean once —
  // every later faulty rewrite must leave the valid file intact (tmp+rename
  // atomicity under injected EIO/short-write/fsync faults).
  const std::string log_path = ::testing::TempDir() + "chaos_soak.log";
  std::remove(log_path.c_str());
  std::remove((log_path + ".manifest").c_str());
  for (int first = 0; first < 4096; ++first) {
    const std::string seg = log_path + ".seg." + std::to_string(first);
    std::remove(seg.c_str());
    std::remove((seg + ".idx").c_str());
  }
  common::RecordLog::Options log_opts;
  log_opts.name = "chaoslog";
  log_opts.segment_max_records = 16;
  auto opened = common::RecordLog::Open(log_path, log_opts);
  ASSERT_TRUE(opened.ok()) << opened.message();
  auto log = std::make_unique<common::RecordLog>(std::move(opened.value()));

  const std::string ckpt_dir = ::testing::TempDir() + "chaos_soak_ckpt";
  for (int h = 0; h < 64; ++h) {
    std::remove((ckpt_dir + "/ckpt-" + std::to_string(h) + ".dcp").c_str());
  }
  auto store = ckpt::CheckpointStore::Open(ckpt_dir);
  ASSERT_TRUE(store.ok()) << store.message();
  auto exported = fleet.servers[0][0]->ExportCheckpoint();
  ASSERT_TRUE(exported.ok()) << exported.message();
  const ckpt::Checkpoint checkpoint = exported.value();
  ASSERT_TRUE(store.value().Write(checkpoint).ok());  // the clean seal
  const Hash256 measurement = core::ExpectedEnclaveMeasurement();

  const std::vector<std::string> crash_sites = {
      "chaoslog.append.before", "chaoslog.append.torn",
      "chaoslog.append.after"};

  auto& io = common::IoFaultInjector::Global();
  auto& crash = common::CrashPoints::Global();
  std::vector<Bytes> confirmed;  // appends that reported success
  std::uint64_t answered = 0, crashes = 0, io_errors = 0;

  const auto want =
      truth.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(want.ok()) << want.message();
  const auto want_agg =
      truth.Aggregate(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(want_agg.ok()) << want_agg.message();

  // One arming for the whole soak: the injector's seeded stream advances
  // across cycles (re-arming each cycle would reset it to the same first
  // draw and the schedule would degenerate).
  io.Arm(plan.DiskFaults());

  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));

    // --- network + Byzantine plane: the verified query. Denial is allowed
    // under chaos; a wrong accepted answer never is.
    if (cycle % 2 == 0) {
      auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
      if (got.ok()) {
        ++answered;
        ASSERT_EQ(got.value(), want.value());
      }
    } else {
      auto got = client.Aggregate(chain.hot_account, 1, chain.tip_height);
      if (got.ok()) {
        ++answered;
        ASSERT_EQ(got.value().count, want_agg.value().count);
        ASSERT_EQ(got.value().sum, want_agg.value().sum);
      }
    }

    // --- disk plane: append under injected I/O faults. A failed append
    // must leave the log consistent (nothing indexed, next append fine).
    Bytes payload(32, static_cast<std::uint8_t>(cycle & 0xFF));
    payload[0] = static_cast<std::uint8_t>(cycle >> 8);
    const auto crash_choice = plan.NextCrash(crash_sites);
    if (crash_choice.arm) {
      crash.Arm(crash_choice.site, crash_choice.countdown);
    }
    bool crashed = false;
    Status append_st = Status::Ok();
    try {
      append_st = log->Append(payload);
    } catch (const common::CrashInjected&) {
      crashed = true;
      ++crashes;
    }
    crash.Disarm();
    if (crashed) {
      // The "process" died mid-append: recover from disk like a restart.
      log.reset();
      auto reopened = common::RecordLog::Open(log_path, log_opts);
      ASSERT_TRUE(reopened.ok()) << reopened.message();
      log = std::make_unique<common::RecordLog>(std::move(reopened.value()));
      // No confirmed record may be lost, none may read back corrupt.
      ASSERT_GE(log->Count(), confirmed.size());
      for (std::size_t i = log->BaseIndex(); i < confirmed.size(); ++i) {
        auto rec = log->Get(i);
        ASSERT_TRUE(rec.ok()) << "record " << i << ": " << rec.message();
        ASSERT_EQ(rec.value(), confirmed[i]);
      }
      // A crash after the write but before the ack can leave a durable
      // unconfirmed record; adopt it so positions stay aligned.
      while (confirmed.size() < log->Count()) {
        auto rec = log->Get(confirmed.size());
        ASSERT_TRUE(rec.ok()) << rec.message();
        confirmed.push_back(rec.value());
      }
    } else if (append_st.ok()) {
      confirmed.push_back(payload);
    } else {
      ++io_errors;
    }

    // --- checkpoint plane: every few cycles rewrite the checkpoint with
    // faults armed. The pre-sealed valid file must survive any outcome.
    if (cycle % 8 == 3) {
      (void)store.value().Write(checkpoint);
      auto best = store.value().LoadLatestValid(~std::uint64_t{0}, measurement);
      ASSERT_TRUE(best.ok()) << best.message();
      ASSERT_TRUE(best.value().has_value());
      ASSERT_EQ(best.value()->height, checkpoint.height);
    }
  }

  const std::uint64_t injected = io.TotalInjected();
  io.Disarm();

  // The soak actually exercised every plane.
  EXPECT_GT(answered, 0u);
  EXPECT_GT(net_counters->Total(), 0u);
  EXPECT_GT(tampered->load(), 0u);
  if (cycles >= 100) {
    EXPECT_GT(crashes, 0u);
    EXPECT_GT(injected, 0u);
    EXPECT_GT(io_errors, 0u);
  }

  // Byzantine outcome: the lying replica is quarantined with serialized
  // evidence, and the evidence file round-trips. Replica 0 may ALSO be
  // quarantined — a bit-flipped reply that still decodes fails verification
  // exactly like a lie, and the client cannot (and must not) tell wire
  // corruption from a Byzantine replica; the clean replica 1 must never be.
  const auto stats = client.Stats();
  EXPECT_GT(stats.verify_failures, 0u);
  EXPECT_TRUE(client.Health()->Quarantined(2));
  EXPECT_FALSE(client.Health()->Quarantined(1));
  const auto evidence = client.Health()->Evidence();
  ASSERT_FALSE(evidence.empty());
  bool liar_in_evidence = false;
  for (const auto& ev : evidence) {
    EXPECT_NE(ev.replica, 1u);
    liar_in_evidence |= ev.replica == 2;
    auto back = MisbehaviorEvidence::Deserialize(ev.Serialize());
    ASSERT_TRUE(back.ok()) << back.message();
    EXPECT_EQ(back.value().verdict, ev.verdict);
  }
  EXPECT_TRUE(liar_in_evidence);
  auto on_disk = LoadEvidenceFile(evidence_path);
  ASSERT_TRUE(on_disk.ok()) << on_disk.message();
  EXPECT_EQ(on_disk.value().size(), evidence.size());

  // Benign convergence: with the weather cleared (replica 0's faults keep
  // their low rates; replica 2 is quarantined away), successes close every
  // breaker within a bounded number of clean-ish rounds.
  bool converged = false;
  for (int round = 0; round < 200 && !converged; ++round) {
    (void)client.Historical(chain.hot_account, 1, chain.tip_height);
    converged = client.Health()->AllClosed();
  }
  EXPECT_TRUE(converged) << "breakers failed to re-close after the soak";

  // Final durable-state audit: everything confirmed reads back intact.
  auto final_log = common::RecordLog::Open(log_path, log_opts);
  ASSERT_TRUE(final_log.ok()) << final_log.message();
  EXPECT_EQ(final_log.value().Count(), confirmed.size());
  for (std::size_t i = final_log.value().BaseIndex(); i < confirmed.size();
       ++i) {
    auto rec = final_log.value().Get(i);
    ASSERT_TRUE(rec.ok()) << rec.message();
    EXPECT_EQ(rec.value(), confirmed[i]);
  }
  std::remove(evidence_path.c_str());
}

}  // namespace
}  // namespace dcert::fleet
