// Observability library: sharded counter/gauge/histogram correctness under
// concurrent hammering (the TSan leg runs this), log-linear bucket geometry
// at the boundaries, snapshot-vs-live isolation, registry ownership
// semantics, trace spans, and the exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dcert::obs {
namespace {

/// Tests that flip the global switch must restore it no matter how they exit,
/// or every later test in the binary silently records nothing.
struct EnabledGuard {
  bool prev = Enabled();
  ~EnabledGuard() { SetEnabled(prev); }
};

TEST(Counter, ConcurrentHammerIsExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.Set(-4);
  EXPECT_EQ(g.Value(), -4);
}

TEST(Histogram, ConcurrentHammerCountAndSumAreExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snap.count, kTotal);
  EXPECT_EQ(snap.sum, kTotal * (kTotal - 1) / 2);  // sum of 0..kTotal-1
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kTotal - 1);
  std::uint64_t bucket_total = 0;
  for (const auto& [bound, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(Histogram, BucketIndexBoundaries) {
  // Values below kSub get exact buckets.
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
  }
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kSub), Histogram::kSub);
  // The top of u64 lands in the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBucketCount - 1);
  // Index is monotone non-decreasing around every power of two, and in
  // range everywhere.
  for (int exp = 0; exp < 64; ++exp) {
    const std::uint64_t p = std::uint64_t{1} << exp;
    const std::size_t below = Histogram::BucketIndex(p - 1);
    const std::size_t at = Histogram::BucketIndex(p);
    const std::size_t above = Histogram::BucketIndex(p + 1);
    EXPECT_LE(below, at) << "p=" << p;
    EXPECT_LE(at, above) << "p=" << p;
    EXPECT_LT(above, Histogram::kBucketCount);
  }
}

TEST(Histogram, BucketUpperBoundRoundTrips) {
  // Every bucket's inclusive upper bound maps back to that bucket, and the
  // next representable value maps to the next bucket.
  for (std::size_t idx = 0; idx < Histogram::kBucketCount; ++idx) {
    const std::uint64_t bound = Histogram::BucketUpperBound(idx);
    EXPECT_EQ(Histogram::BucketIndex(bound), idx) << "bound=" << bound;
    if (bound != std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_EQ(Histogram::BucketIndex(bound + 1), idx + 1);
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, QuantileSingleSample) {
  Histogram h;
  h.Record(60000);
  const HistogramSnapshot snap = h.Snapshot();
  // One sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_EQ(snap.Quantile(0.0), 60000.0);
  EXPECT_EQ(snap.Quantile(0.5), 60000.0);
  EXPECT_EQ(snap.Quantile(1.0), 60000.0);
}

TEST(Histogram, QuantileUniformWithinBucketResolution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  // Log-linear buckets give ~12.5% relative resolution; allow 15%.
  EXPECT_NEAR(snap.Quantile(0.5), 500.0, 75.0);
  EXPECT_NEAR(snap.Quantile(0.95), 950.0, 145.0);
  EXPECT_GE(snap.Quantile(1.0), snap.Quantile(0.5));
  EXPECT_EQ(snap.Quantile(1.0), 1000.0);
}

TEST(Histogram, EmptySnapshot) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_TRUE(snap.buckets.empty());
}

TEST(Snapshot, MergeFromCombinesFleetMembers) {
  // The fleet-stats merge rule: counters sum, gauges keep the max, and
  // histograms bucket-merge so fleet percentiles come from the combined
  // distribution rather than an average of per-member percentiles.
  MetricsRegistry a, b;
  a.GetCounter("served")->Add(10);
  b.GetCounter("served")->Add(32);
  b.GetCounter("only.b")->Add(7);
  a.GetGauge("inflight")->Set(3);
  b.GetGauge("inflight")->Set(9);
  for (std::uint64_t v = 1; v <= 100; ++v) a.GetHistogram("lat")->Record(v);
  for (std::uint64_t v = 901; v <= 1000; ++v) b.GetHistogram("lat")->Record(v);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.counters.at("served"), 42u);
  EXPECT_EQ(merged.counters.at("only.b"), 7u);
  EXPECT_EQ(merged.gauges.at("inflight"), 9);

  const HistogramSnapshot& lat = merged.histograms.at("lat");
  EXPECT_EQ(lat.count, 200u);
  EXPECT_EQ(lat.min, 1u);
  EXPECT_EQ(lat.max, 1000u);
  // Half the samples are ~[1,100], half ~[901,1000]: the median falls in the
  // gap between the two members' ranges, p90 in the slow member's range —
  // values no single member's histogram could produce.
  EXPECT_GT(lat.Quantile(0.9), 850.0);
  EXPECT_LT(lat.Quantile(0.25), 150.0);

  // Merging an empty snapshot is the identity in both directions.
  MetricsSnapshot empty;
  empty.MergeFrom(merged);
  EXPECT_EQ(empty.counters.at("served"), 42u);
  EXPECT_EQ(empty.histograms.at("lat").count, 200u);
  merged.MergeFrom(MetricsSnapshot{});
  EXPECT_EQ(merged.histograms.at("lat").count, 200u);
}

TEST(Registry, SnapshotIsIsolatedFromLaterWrites) {
  MetricsRegistry reg;
  auto c = reg.GetCounter("test.counter");
  auto h = reg.GetHistogram("test.hist");
  c->Add(5);
  h->Record(100);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(95);
  h->Record(200);
  EXPECT_EQ(before.counters.at("test.counter"), 5u);
  EXPECT_EQ(before.histograms.at("test.hist").count, 1u);
  const MetricsSnapshot after = reg.Snapshot();
  EXPECT_EQ(after.counters.at("test.counter"), 100u);
  EXPECT_EQ(after.histograms.at("test.hist").count, 2u);
}

TEST(Registry, GetReturnsSameInstanceAndRegisterReplaces) {
  MetricsRegistry reg;
  auto a = reg.GetCounter("same.name");
  auto b = reg.GetCounter("same.name");
  EXPECT_EQ(a.get(), b.get());
  // Latest-wins: registering a fresh instance replaces the snapshot source.
  a->Add(7);
  auto fresh = std::make_shared<Counter>();
  fresh->Add(1);
  reg.Register("same.name", fresh);
  EXPECT_EQ(reg.Snapshot().counters.at("same.name"), 1u);
  EXPECT_EQ(a->Value(), 7u);  // old instance still owned by the holder
}

TEST(Registry, DeltaFromSubtractsPerName) {
  MetricsRegistry reg;
  auto c = reg.GetCounter("delta.counter");
  auto h = reg.GetHistogram("delta.hist");
  c->Add(10);
  h->Record(50);
  const MetricsSnapshot base = reg.Snapshot();
  c->Add(32);
  h->Record(60);
  h->Record(70);
  const MetricsSnapshot delta = reg.Snapshot().DeltaFrom(base);
  EXPECT_EQ(delta.counters.at("delta.counter"), 32u);
  EXPECT_EQ(delta.histograms.at("delta.hist").count, 2u);
  EXPECT_EQ(delta.histograms.at("delta.hist").sum, 130u);
}

TEST(Enabled, KillSwitchMakesWritesNoOps) {
  EnabledGuard guard;
  Counter c;
  Histogram h;
  SetEnabled(false);
  c.Add(5);
  h.Record(123);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  SetEnabled(true);
  c.Add(5);
  h.Record(123);
  EXPECT_EQ(c.Value(), 5u);
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(Trace, SpanRecordsIntoHistogramAndRing) {
  auto h = std::make_shared<Histogram>();
  {
    TraceSpan span("obs_test.span", h);
  }
  EXPECT_EQ(h->Snapshot().count, 1u);
  const auto recent = TraceLog::Global().Recent();
  bool found = false;
  for (const auto& e : recent) {
    if (e.name != nullptr && std::string(e.name) == "obs_test.span") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, FinishIsIdempotent) {
  auto h = std::make_shared<Histogram>();
  TraceSpan span("obs_test.finish", h);
  const std::uint64_t d1 = span.Finish();
  const std::uint64_t d2 = span.Finish();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(h->Snapshot().count, 1u);
}

TEST(Trace, ConcurrentSpansAreSafe) {
  auto h = std::make_shared<Histogram>();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("obs_test.concurrent", h);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

TEST(Export, JsonAndPrometheusContainMetric) {
  MetricsRegistry reg;
  reg.GetCounter("export.requests")->Add(3);
  reg.GetGauge("export.depth")->Set(-2);
  reg.GetHistogram("export.lat_ns")->Record(1000);
  const MetricsSnapshot snap = reg.Snapshot();

  const std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"export.requests\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"export.depth\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("export.lat_ns"), std::string::npos);

  const std::string prom = ToPrometheusText(snap);
  EXPECT_NE(prom.find("dcert_export_requests 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("dcert_export_depth -2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("dcert_export_lat_ns_count 1"), std::string::npos) << prom;

  const std::string table = RenderTable(snap);
  EXPECT_NE(table.find("export.requests"), std::string::npos);
}

/// The overhead canary: instrumented counter increments must stay within an
/// order of magnitude of plain relaxed atomics. Deliberately generous — this
/// pins "no lock sneaked onto the hot path", not a microbenchmark number; the
/// real ≤5% serving budget is measured by bench_serving --obs-ab.
TEST(Overhead, CounterAddStaysCheap) {
  EnabledGuard guard;
  SetEnabled(true);
  constexpr std::uint64_t kIters = 2000000;
  Counter c;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) c.Add(1);
  const auto instrumented = std::chrono::steady_clock::now() - t0;

  std::atomic<std::uint64_t> plain{0};
  const auto t1 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    plain.fetch_add(1, std::memory_order_relaxed);
  }
  const auto baseline = std::chrono::steady_clock::now() - t1;

  ASSERT_EQ(c.Value(), kIters);
  ASSERT_EQ(plain.load(), kIters);
  // 10x headroom absorbs scheduler noise in sanitizer/CI builds.
  EXPECT_LT(instrumented.count(), baseline.count() * 10 + 10000000)
      << "instrumented " << instrumented.count() << "ns vs baseline "
      << baseline.count() << "ns";
}

}  // namespace
}  // namespace dcert::obs
