// Verifiable queries: augmented & hierarchical certification, historical
// index (DCert two-level and LineageChain baseline), keyword index, and the
// Theorem 2 tamper/incompleteness paths.
#include <gtest/gtest.h>

#include "dcert/enclave_program.h"
#include "dcert/issuer.h"
#include "dcert/superlight.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "query/keyword_index.h"
#include "query/lineage_index.h"
#include "workloads/workloads.h"

namespace dcert::query {
namespace {

using core::CertificateIssuer;
using core::ExpectedEnclaveMeasurement;
using core::SuperlightClient;
using workloads::AccountPool;
using workloads::Workload;
using workloads::WorkloadGenerator;

/// Drives a chain of KVStore blocks through a CI with attached indexes.
struct QueryRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 77};
  std::unique_ptr<WorkloadGenerator> gen;
  std::shared_ptr<HistoricalIndex> hist = std::make_shared<HistoricalIndex>();
  std::shared_ptr<LineageIndex> lineage = std::make_shared<LineageIndex>();
  std::shared_ptr<KeywordIndex> keyword = std::make_shared<KeywordIndex>();
  std::vector<chain::Block> blocks;

  QueryRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    ci = std::make_unique<CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    WorkloadGenerator::Params params;
    params.kind = Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 10;  // few accounts => many versions each
    gen = std::make_unique<WorkloadGenerator>(params, pool);
    ci->AttachIndex(hist);
    ci->AttachIndex(lineage);
    ci->AttachIndex(keyword);
  }

  chain::Block NextBlock(std::size_t txs = 6) {
    auto block = miner->MineBlock(gen->NextBlockTxs(txs), 1000 + miner_node->Height());
    if (!block.ok()) throw std::runtime_error(block.message());
    Status st = miner_node->SubmitBlock(block.value());
    if (!st) throw std::runtime_error(st.message());
    blocks.push_back(block.value());
    return block.value();
  }
};

TEST(ExtractionTest, HistoricalWritesFromKvPuts) {
  QueryRig rig;
  chain::Block blk = rig.NextBlock(10);
  std::vector<HistEntry> entries = ExtractHistoricalWrites(blk);
  // KVStore generator issues puts and gets ~50/50; only puts become entries.
  std::size_t puts = 0;
  for (const auto& tx : blk.txs) {
    if (tx.calldata.size() == 3 && tx.calldata[0] == 0) ++puts;
  }
  EXPECT_EQ(entries.size(), puts);
  for (const HistEntry& e : entries) {
    EXPECT_EQ(VersionHeight(e.version), blk.header.height);
    EXPECT_EQ(e.account_key, HistAccountKey(e.account_word));
  }
}

TEST(ExtractionTest, VersionWindowCoversWholeBlocks) {
  auto [lo, hi] = VersionWindow(5, 7);
  EXPECT_EQ(VersionHeight(lo), 5u);
  EXPECT_EQ(VersionHeight(hi), 7u);
  EXPECT_EQ(VersionHeight(hi + 1), 8u);
  EXPECT_LT(MakeVersion(5, 3), MakeVersion(5, 4));
  EXPECT_LT(MakeVersion(5, 1000), MakeVersion(6, 0));
}

TEST(ExtractionTest, KeywordWritesTagContractAndOp) {
  QueryRig rig;
  chain::Block blk = rig.NextBlock(5);
  auto writes = ExtractKeywordWrites(blk);
  std::size_t total = 0;
  for (const auto& [kw, locs] : writes) total += locs.size();
  EXPECT_EQ(total, 2 * blk.txs.size());  // every tx: contract tag + op tag
  EXPECT_TRUE(writes.count("c3000") == 1);
}

TEST(HierarchicalCertTest, EndToEndWithThreeIndexes) {
  QueryRig rig;
  SuperlightClient client(ExpectedEnclaveMeasurement());
  for (int i = 0; i < 6; ++i) {
    chain::Block blk = rig.NextBlock();
    auto certs = rig.ci->ProcessBlockHierarchical(blk);
    ASSERT_TRUE(certs.ok()) << "block " << i << ": " << certs.message();
    ASSERT_EQ(certs.value().size(), 3u);
    // Block certificate flows to the client as usual.
    ASSERT_TRUE(rig.ci->LatestCert().has_value());
    ASSERT_TRUE(client.ValidateAndAccept(blk.header, *rig.ci->LatestCert()).ok());
    // Index certificates bind the certified digests.
    ASSERT_TRUE(client
                    .AcceptIndexCert(blk.header, certs.value()[0],
                                     rig.hist->CurrentDigest(), rig.hist->Id())
                    .ok());
    ASSERT_TRUE(client
                    .AcceptIndexCert(blk.header, certs.value()[1],
                                     rig.lineage->CurrentDigest(), rig.lineage->Id())
                    .ok());
    ASSERT_TRUE(client
                    .AcceptIndexCert(blk.header, certs.value()[2],
                                     rig.keyword->CurrentDigest(), rig.keyword->Id())
                    .ok());
  }
  // One Ecall for the block + three for the indexes per block.
  EXPECT_EQ(rig.ci->LastTiming().ecalls, 4u);
}

TEST(AugmentedCertTest, EndToEndWithThreeIndexes) {
  QueryRig rig;
  for (int i = 0; i < 4; ++i) {
    chain::Block blk = rig.NextBlock();
    auto certs = rig.ci->ProcessBlockAugmented(blk);
    ASSERT_TRUE(certs.ok()) << "block " << i << ": " << certs.message();
    ASSERT_EQ(certs.value().size(), 3u);
  }
  // Augmented: one (heavy) Ecall per index, no separate block cert.
  EXPECT_EQ(rig.ci->LastTiming().ecalls, 3u);
  EXPECT_FALSE(rig.ci->LatestCert().has_value());
}

TEST(HistoricalQueryTest, WindowQueryVerifies) {
  QueryRig rig;
  for (int i = 0; i < 10; ++i) {
    auto certs = rig.ci->ProcessBlockHierarchical(rig.NextBlock());
    ASSERT_TRUE(certs.ok()) << certs.message();
  }
  Hash256 digest = rig.hist->CurrentDigest();

  // Collect the ground truth from the chain itself.
  std::map<std::uint64_t, std::vector<HistoricalVersion>> truth;
  for (const chain::Block& blk : rig.blocks) {
    for (const HistEntry& e : ExtractHistoricalWrites(blk)) {
      truth[e.account_word].push_back(
          {e.version, VersionHeight(e.version), e.value_word});
    }
  }

  int verified_nonempty = 0;
  for (const auto& [account, versions] : truth) {
    HistoricalQueryProof proof = rig.hist->Query(account, 1, 10);
    auto result = HistoricalIndex::VerifyQuery(digest, account, 1, 10, proof);
    ASSERT_TRUE(result.ok()) << "account " << account << ": " << result.message();
    EXPECT_EQ(result.value(), versions) << "account " << account;
    if (!versions.empty()) ++verified_nonempty;
  }
  EXPECT_GT(verified_nonempty, 0);

  // Unknown account: provably empty.
  HistoricalQueryProof proof = rig.hist->Query(424242, 1, 10);
  auto result = HistoricalIndex::VerifyQuery(digest, 424242, 1, 10, proof);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_TRUE(result.value().empty());
}

TEST(HistoricalQueryTest, SubWindowReturnsOnlyThoseBlocks) {
  QueryRig rig;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 digest = rig.hist->CurrentDigest();
  // Find an account with versions in several blocks.
  for (std::uint64_t account = 0; account < 10; ++account) {
    HistoricalQueryProof proof = rig.hist->Query(account, 3, 5);
    auto result = HistoricalIndex::VerifyQuery(digest, account, 3, 5, proof);
    ASSERT_TRUE(result.ok()) << result.message();
    for (const HistoricalVersion& v : result.value()) {
      EXPECT_GE(v.block_height, 3u);
      EXPECT_LE(v.block_height, 5u);
    }
  }
}

TEST(HistoricalQueryTest, TamperedProofsRejected) {
  QueryRig rig;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 digest = rig.hist->CurrentDigest();
  // Find a non-empty account.
  std::uint64_t account = 0;
  for (; account < 10; ++account) {
    auto r = HistoricalIndex::VerifyQuery(digest, account, 1, 5,
                                          rig.hist->Query(account, 1, 5));
    if (r.ok() && !r.value().empty()) break;
  }
  ASSERT_LT(account, 10u);

  // Lying about the lower root: rejected.
  HistoricalQueryProof bad_root = rig.hist->Query(account, 1, 5);
  bad_root.lower_root[0] ^= 1;
  EXPECT_FALSE(
      HistoricalIndex::VerifyQuery(digest, account, 1, 5, bad_root).ok());

  // Stale digest (an older certified state) no longer matches.
  Hash256 wrong_digest = digest;
  wrong_digest[1] ^= 1;
  EXPECT_FALSE(HistoricalIndex::VerifyQuery(wrong_digest, account, 1, 5,
                                            rig.hist->Query(account, 1, 5))
                   .ok());

  // Proof for the wrong account: rejected.
  HistoricalQueryProof other = rig.hist->Query(account + 1, 1, 5);
  EXPECT_FALSE(HistoricalIndex::VerifyQuery(digest, account, 1, 5, other).ok());
}

TEST(HistoricalQueryTest, ProofSerializationRoundTrip) {
  QueryRig rig;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 digest = rig.hist->CurrentDigest();
  HistoricalQueryProof proof = rig.hist->Query(3, 1, 4);
  auto decoded = HistoricalQueryProof::Deserialize(proof.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  auto direct = HistoricalIndex::VerifyQuery(digest, 3, 1, 4, proof);
  auto roundtrip = HistoricalIndex::VerifyQuery(digest, 3, 1, 4, decoded.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_EQ(direct.value(), roundtrip.value());
}

TEST(LineageQueryTest, BaselineAgreesWithDcertIndex) {
  QueryRig rig;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 dcert_digest = rig.hist->CurrentDigest();
  Hash256 lineage_digest = rig.lineage->CurrentDigest();

  for (std::uint64_t account = 0; account < 10; ++account) {
    auto a = HistoricalIndex::VerifyQuery(dcert_digest, account, 2, 6,
                                          rig.hist->Query(account, 2, 6));
    auto b = LineageIndex::VerifyQuery(lineage_digest, account, 2, 6,
                                       rig.lineage->Query(account, 2, 6));
    ASSERT_TRUE(a.ok()) << a.message();
    ASSERT_TRUE(b.ok()) << b.message();
    EXPECT_EQ(a.value(), b.value()) << "account " << account;
  }
}

TEST(LineageQueryTest, TamperedProofRejected) {
  QueryRig rig;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 digest = rig.lineage->CurrentDigest();
  std::uint64_t account = 0;
  for (; account < 10; ++account) {
    auto r = LineageIndex::VerifyQuery(digest, account, 1, 5,
                                       rig.lineage->Query(account, 1, 5));
    if (r.ok() && !r.value().empty()) break;
  }
  ASSERT_LT(account, 10u);
  LineageQueryProof proof = rig.lineage->Query(account, 1, 5);
  ASSERT_FALSE(proof.range_proof.visited.empty());
  bool mutated = false;
  for (auto& rec : proof.range_proof.visited) {
    if (rec.value) {
      (*rec.value)[0] ^= 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(LineageIndex::VerifyQuery(digest, account, 1, 5, proof).ok());
}

TEST(KeywordQueryTest, ConjunctiveQueryVerifies) {
  QueryRig rig;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(rig.NextBlock()).ok());
  }
  Hash256 digest = rig.keyword->CurrentDigest();

  // "All KV put transactions" = c3000 AND op0.
  std::vector<std::string> keywords{"c3000", "op0"};
  auto proof = rig.keyword->Query(keywords);
  auto result = KeywordIndex::VerifyQuery(digest, keywords, proof);
  ASSERT_TRUE(result.ok()) << result.message();

  std::size_t expected = 0;
  for (const chain::Block& blk : rig.blocks) {
    expected += ExtractHistoricalWrites(blk).size();  // puts == historical entries
  }
  EXPECT_EQ(result.value().size(), expected);

  // Hiding a result breaks verification.
  auto bad = proof;
  ASSERT_FALSE(bad.postings["op0"].empty());
  bad.postings["op0"].pop_back();
  EXPECT_FALSE(KeywordIndex::VerifyQuery(digest, keywords, bad).ok());
}

TEST(IndexSecurityTest, EnclaveRejectsTamperedIndexUpdate) {
  // Drive AugmentedSigGen directly with a corrupted aux proof.
  QueryRig rig;
  chain::Block b1 = rig.NextBlock();
  ASSERT_TRUE(rig.ci->ProcessBlockHierarchical(b1).ok());
  chain::Block b2 = rig.NextBlock();

  core::EnclaveConfig ec;
  ec.genesis_hash = chain::MakeGenesisBlock(rig.config).header.Hash();
  ec.registry_digest = rig.registry->Digest();
  ec.difficulty_bits = rig.config.difficulty_bits;
  core::CertEnclaveProgram program(ec, rig.registry, StrBytes("test-key"));

  chain::FullNode replay_node(rig.config, rig.registry);
  ASSERT_TRUE(replay_node.SubmitBlock(b1).ok());
  auto exec = chain::ExecuteBlockTxs(b2.txs, *rig.registry, replay_node.State());
  ASSERT_TRUE(exec.ok());
  core::StateUpdateProof proof = core::BuildStateUpdateProof(
      exec.value().reads, exec.value().writes, replay_node.State());

  // A fresh historical index replaying b1 then b2 (like an honest SP).
  HistoricalIndex honest("h2");
  Bytes aux1 = honest.ApplyBlockCapturingAux(b1);
  Hash256 digest_after_b1 = honest.CurrentDigest();
  Bytes aux2 = honest.ApplyBlockCapturingAux(b2);

  HistoricalIndexVerifier verifier;
  // Honest aux verifies (no prev cert needed when prev digest chain starts
  // at genesis — use the verifier directly).
  auto d1 = verifier.ApplyUpdate(verifier.GenesisDigest(), aux1, b1);
  ASSERT_TRUE(d1.ok()) << d1.message();
  EXPECT_EQ(d1.value(), digest_after_b1);
  auto d2 = verifier.ApplyUpdate(d1.value(), aux2, b2);
  ASSERT_TRUE(d2.ok()) << d2.message();
  EXPECT_EQ(d2.value(), honest.CurrentDigest());

  // Corrupted aux: rejected.
  if (!aux2.empty()) {
    Bytes corrupted = aux2;
    corrupted[corrupted.size() / 2] ^= 1;
    auto bad = verifier.ApplyUpdate(d1.value(), corrupted, b2);
    // Either a parse failure or a digest mismatch downstream — both rejections.
    if (bad.ok()) {
      EXPECT_NE(bad.value(), honest.CurrentDigest());
    }
  }

  // Aux for the wrong block: rejected.
  auto wrong_block = verifier.ApplyUpdate(d1.value(), aux1, b2);
  if (wrong_block.ok()) {
    EXPECT_NE(wrong_block.value(), honest.CurrentDigest());
  }
}

}  // namespace
}  // namespace dcert::query
