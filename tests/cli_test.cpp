// dcertctl argument handling, pinned end-to-end: unknown subcommands and
// malformed arguments must print the usage banner and exit nonzero (exit 2),
// and the happy paths that need no server must exit 0. The binary path comes
// from the build system via DCERTCTL_PATH ($<TARGET_FILE:dcertctl>).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

/// Runs dcertctl with `args`, capturing combined output and the exit code.
CliResult RunCli(const std::string& args) {
  const std::string cmd = std::string(DCERTCTL_PATH) + " " + args + " 2>&1";
  CliResult r;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.output.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

bool PrintsUsage(const CliResult& r) {
  return r.output.find("usage: dcertctl") != std::string::npos;
}

TEST(Cli, NoArgsPrintsUsage) {
  const CliResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(PrintsUsage(r)) << r.output;
}

TEST(Cli, UnknownSubcommandPrintsUsageAndFailsNonzero) {
  const CliResult r = RunCli("bogus-subcommand");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(PrintsUsage(r)) << r.output;
}

TEST(Cli, DemoRejectsMalformedBlockCount) {
  for (const char* bad : {"demo not-a-number", "demo -3", "demo 5 12abc"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, QueryRejectsMalformedTargetAndArgs) {
  // Malformed targets: no port, empty host, port 0, non-numeric port.
  for (const char* bad :
       {"query localhost tip", "query :123 tip", "query localhost:0 tip",
        "query localhost:abc tip", "query localhost:70000 tip"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
  // Well-formed target but malformed numeric args; parsing happens before
  // any connection, so no server is required.
  for (const char* bad :
       {"query localhost:19999 hist abc 1 2", "query localhost:19999 hist 1 x 2",
        "query localhost:19999 agg 1 2", "query localhost:19999 frobnicate"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, StatsRejectsMalformedTargetAndUnknownFormat) {
  for (const char* bad : {"stats localhost", "stats localhost:0",
                          "stats localhost:19999 --yaml"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, ServeRejectsMalformedPort) {
  for (const char* bad : {"serve abc", "serve 70000", "serve 0 xyz"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, ServeRejectsMalformedShardSpec) {
  // --shard wants i/N with i < N; --map-version must be a positive number.
  for (const char* bad :
       {"serve 0 --shard", "serve 0 --shard 4", "serve 0 --shard a/b",
        "serve 0 --shard 2/2", "serve 0 --shard 3/2", "serve 0 --shard 0/0",
        "serve 0 --shard 0/2 --map-version 0",
        "serve 0 --shard 0/2 --map-version abc"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, StatsAcceptsMultipleTargetsButRejectsAnyMalformedOne) {
  // Multi-endpoint stats validates every target up front; one bad endpoint
  // fails the whole invocation before anything is dialed.
  for (const char* bad :
       {"stats localhost:19999 localhost", "stats localhost:19999 bad:0",
        "stats localhost:19999 localhost:19998 --yaml"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, FleetQueryRejectsMalformedEndpointListAndArgs) {
  for (const char* bad :
       {// missing everything / unknown op / malformed numerics
        "fleet-query", "fleet-query localhost:19999 tip",
        "fleet-query localhost:19999 hist abc 1 2",
        "fleet-query localhost:19999 agg 1 2",
        // endpoint list shape: bad target, empty group, ragged replicas
        "fleet-query localhost hist 1 1 2",
        "fleet-query localhost:19999,, hist 1 1 2",
        "fleet-query localhost:19999+localhost:19998,localhost:19997 hist 1 1 2",
        // paranoid mode needs at least two replicas per shard
        "fleet-query localhost:19999,localhost:19998 hist 1 1 2 --paranoid",
        // map version 0 is reserved for "unsharded"
        "fleet-query localhost:19999 hist 1 1 2 --map-version 0"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, StatsReportsUnreachableEndpointsInlineAndFailsOnlyIfAllDo) {
  // Ports 1 and 2 are never listening; with every endpoint down the merged
  // table is impossible, so the exit is a runtime failure (1, not a usage 2)
  // and each endpoint's failure is named in the output.
  const CliResult r = RunCli("stats 127.0.0.1:1 127.0.0.1:2");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_FALSE(PrintsUsage(r)) << r.output;
  EXPECT_NE(r.output.find("stats fetch from 127.0.0.1:1 failed"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("stats fetch from 127.0.0.1:2 failed"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("no endpoint reachable (2 tried)"), std::string::npos)
      << r.output;
}

TEST(Cli, FleetHealthRejectsMalformedArgs) {
  for (const char* bad :
       {// nothing to do: no endpoints and no evidence file
        "fleet-health",
        // malformed targets fail validation before any dial
        "fleet-health localhost", "fleet-health localhost:0",
        "fleet-health localhost:19999 bad:port",
        // --release only makes sense against an evidence file
        "fleet-health localhost:19999 --release 2",
        "fleet-health --release 2",
        // flag argument shape
        "fleet-health localhost:19999 --evidence",
        "fleet-health localhost:19999 --release",
        "fleet-health localhost:19999 --release abc",
        "fleet-health localhost:19999 --bogus-flag"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
}

TEST(Cli, FleetHealthUnreachableEndpointIsRuntimeFailure) {
  const CliResult r = RunCli("fleet-health 127.0.0.1:1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_FALSE(PrintsUsage(r)) << r.output;
  EXPECT_NE(r.output.find("UNREACHABLE"), std::string::npos) << r.output;
}

TEST(Cli, FleetHealthListsEmptyEvidenceFileWithoutDialing) {
  // A missing evidence file reads as "no quarantines"; with no endpoints to
  // probe this is a pure local operation and succeeds.
  const std::string path = ::testing::TempDir() + "cli_no_evidence.bin";
  std::remove(path.c_str());
  const CliResult r = RunCli("fleet-health --evidence " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_FALSE(PrintsUsage(r)) << r.output;
  EXPECT_NE(r.output.find("0 misbehavior record(s)"), std::string::npos)
      << r.output;
}

TEST(Cli, MeasureSucceeds) {
  const CliResult r = RunCli("measure");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_FALSE(PrintsUsage(r));
}

TEST(Cli, KeygenSucceedsAndRejectsMissingSeed) {
  EXPECT_EQ(RunCli("keygen 42").exit_code, 0);
  // Any string is a valid seed; the error case is omitting it entirely.
  const CliResult bad = RunCli("keygen");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_TRUE(PrintsUsage(bad)) << bad.output;
}

TEST(Cli, FsckAndRecoverRejectMalformedArgs) {
  for (const char* bad : {"fsck", "recover", "recover /tmp/x notanum"}) {
    const CliResult r = RunCli(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << ": " << r.output;
    EXPECT_TRUE(PrintsUsage(r)) << bad << ": " << r.output;
  }
  // A missing block log is a runtime failure (exit 1), not a usage error.
  const CliResult gone = RunCli("fsck /nonexistent/blocks.log");
  EXPECT_EQ(gone.exit_code, 1) << gone.output;
  EXPECT_FALSE(PrintsUsage(gone));
}

TEST(Cli, RecoverFreshThenResumeThenFsck) {
  const std::string dir = ::testing::TempDir() + "cli_recover";
  mkdir(dir.c_str(), 0755);
  for (const char* f : {"/blocks.log", "/certs.log", "/key.sealed"}) {
    std::remove((dir + f).c_str());
  }

  // First run creates the durable state and mines 2 blocks…
  const CliResult fresh = RunCli("recover " + dir + " 2");
  EXPECT_EQ(fresh.exit_code, 0) << fresh.output;
  EXPECT_NE(fresh.output.find("fresh start"), std::string::npos) << fresh.output;

  // …the second resumes from it, replaying the stored certified blocks under
  // the same sealed key, and extends the chain.
  const CliResult resumed = RunCli("recover " + dir + " 2");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resumed"), std::string::npos) << resumed.output;
  EXPECT_NE(resumed.output.find("replayed 2 certified block(s)"),
            std::string::npos)
      << resumed.output;

  // fsck cross-checks every stored certificate against its block.
  const CliResult fsck =
      RunCli("fsck " + dir + "/blocks.log " + dir + "/certs.log");
  EXPECT_EQ(fsck.exit_code, 0) << fsck.output;
  EXPECT_NE(fsck.output.find("fsck OK (4 cert(s) cross-checked)"),
            std::string::npos)
      << fsck.output;
}

}  // namespace
