// General stateless MB-tree inserts and the certified payment-range index.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "dcert/issuer.h"
#include "mht/mbtree.h"
#include "query/range_index.h"
#include "workloads/workloads.h"

namespace dcert::mht {
namespace {

Bytes Val(std::uint64_t k) { return StrBytes("v-" + std::to_string(k)); }

TEST(MbInsertTest, ApplyInsertMatchesInsertRandomOrder) {
  Rng rng(77);
  MbTree tree;
  Hash256 root = MbTree::EmptyRoot();
  std::set<std::uint64_t> used;
  for (int i = 0; i < 300; ++i) {
    std::uint64_t key;
    do {
      key = rng.NextBelow(100'000);
    } while (!used.insert(key).second);
    MbAppendProof proof = tree.ProveInsert(key);
    Bytes value = Val(key);
    auto predicted = MbTree::ApplyInsert(root, proof, key,
                                         crypto::Sha256::Digest(value),
                                         MbValueWord(value));
    ASSERT_TRUE(predicted.ok()) << "i=" << i << ": " << predicted.message();
    tree.Insert(key, value);
    ASSERT_EQ(predicted.value(), tree.Root()) << "i=" << i;
    root = predicted.value();
  }
  EXPECT_EQ(tree.Size(), 300u);
}

TEST(MbInsertTest, DuplicateKeyRejected) {
  MbTree tree;
  tree.Insert(5, Val(5));
  tree.Insert(9, Val(9));
  MbAppendProof proof = tree.ProveInsert(5);
  EXPECT_FALSE(MbTree::ApplyInsert(tree.Root(), proof, 5,
                                   crypto::Sha256::Digest(Val(5)), 0)
                   .ok());
}

TEST(MbInsertTest, WrongPathRejected) {
  MbTree tree;
  for (std::uint64_t k = 0; k < 64; ++k) tree.Insert(k * 10, Val(k));
  // A proof for a different key's path must not validate for this key when
  // the canonical descent differs.
  MbAppendProof wrong_path = tree.ProveInsert(5);    // leftmost area
  auto result = MbTree::ApplyInsert(tree.Root(), wrong_path, 635,
                                    crypto::Sha256::Digest(Val(635)), 0);
  EXPECT_FALSE(result.ok());
}

TEST(MbInsertTest, TamperedProofRejected) {
  MbTree tree;
  for (std::uint64_t k = 0; k < 40; ++k) tree.Insert(k * 3 + 1, Val(k));
  MbAppendProof proof = tree.ProveInsert(50);
  ASSERT_FALSE(proof.root->is_leaf);
  for (auto& c : proof.root->children) {
    if (!c.node) {
      c.hash[0] ^= 1;
      break;
    }
  }
  EXPECT_FALSE(MbTree::ApplyInsert(tree.Root(), proof, 50,
                                   crypto::Sha256::Digest(Val(50)), 0)
                   .ok());
}

TEST(MbInsertTest, InsertIntoEmptyTree) {
  MbTree tree;
  MbAppendProof proof = tree.ProveInsert(42);
  Bytes value = Val(42);
  auto predicted = MbTree::ApplyInsert(MbTree::EmptyRoot(), proof, 42,
                                       crypto::Sha256::Digest(value),
                                       MbValueWord(value));
  ASSERT_TRUE(predicted.ok()) << predicted.message();
  tree.Insert(42, value);
  EXPECT_EQ(predicted.value(), tree.Root());
}

}  // namespace
}  // namespace dcert::mht

namespace dcert::query {
namespace {

using workloads::AccountPool;
using workloads::ContractId;
using workloads::Workload;

struct PaymentRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::unique_ptr<core::CertificateIssuer> ci;
  std::unique_ptr<chain::FullNode> miner_node;
  std::unique_ptr<chain::Miner> miner;
  AccountPool pool{4, 606};
  std::shared_ptr<RangeIndex> index = std::make_shared<RangeIndex>();
  std::vector<PaymentRecord> ground_truth;

  PaymentRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    ci = std::make_unique<core::CertificateIssuer>(config, registry);
    miner_node = std::make_unique<chain::FullNode>(config, registry);
    miner = std::make_unique<chain::Miner>(*miner_node);
    ci->AttachIndex(index);
  }

  /// One block: fund the sources, then issue payments with given amounts.
  void RunPaymentBlock(const std::vector<std::uint64_t>& amounts) {
    std::uint64_t sb = ContractId(Workload::kSmallBank, 0);
    std::vector<chain::Transaction> txs;
    for (std::size_t i = 0; i < amounts.size(); ++i) {
      // Deposit enough first so the payment succeeds.
      txs.push_back(pool.MakeTx(0, sb, {1, i, amounts[i] + 10}));
    }
    const std::size_t first_payment = txs.size();
    for (std::size_t i = 0; i < amounts.size(); ++i) {
      txs.push_back(pool.MakeTx(1, sb, {3, i, 99, amounts[i]}));
    }
    auto block = miner->MineBlock(std::move(txs), 100 + miner_node->Height());
    ASSERT_TRUE(block.ok()) << block.message();
    ASSERT_TRUE(miner_node->SubmitBlock(block.value()).ok());
    auto certs = ci->ProcessBlockHierarchical(block.value());
    ASSERT_TRUE(certs.ok()) << certs.message();
    for (std::size_t i = 0; i < amounts.size(); ++i) {
      PaymentRecord rec;
      rec.amount = amounts[i];
      rec.src = i;
      rec.dst = 99;
      rec.block_height = block.value().header.height;
      rec.tx_index = static_cast<std::uint32_t>(first_payment + i);
      ground_truth.push_back(rec);
    }
  }
};

TEST(RangeIndexTest, CertifiedRangeQueryReturnsExactPayments) {
  PaymentRig rig;
  rig.RunPaymentBlock({50, 120, 75, 300});
  rig.RunPaymentBlock({10, 85, 200});
  rig.RunPaymentBlock({60, 60, 999});
  Hash256 digest = rig.index->CurrentDigest();
  EXPECT_EQ(rig.index->PaymentCount(), rig.ground_truth.size());

  auto proof = rig.index->Query(50, 100);
  auto result = RangeIndex::VerifyQuery(digest, 50, 100, proof);
  ASSERT_TRUE(result.ok()) << result.message();
  std::multiset<std::uint64_t> got;
  for (const PaymentRecord& rec : result.value()) {
    EXPECT_GE(rec.amount, 50u);
    EXPECT_LE(rec.amount, 100u);
    got.insert(rec.amount);
  }
  std::multiset<std::uint64_t> expected;
  for (const PaymentRecord& rec : rig.ground_truth) {
    if (rec.amount >= 50 && rec.amount <= 100) expected.insert(rec.amount);
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got.size(), 5u);  // 50, 75, 85, 60, 60
}

TEST(RangeIndexTest, AggregateVolumeVerifies) {
  PaymentRig rig;
  rig.RunPaymentBlock({50, 120, 75, 300});
  rig.RunPaymentBlock({10, 85, 200});
  Hash256 digest = rig.index->CurrentDigest();

  auto proof = rig.index->AggregateQuery(0, 1'000'000);
  auto agg = RangeIndex::VerifyAggregate(digest, 0, 1'000'000, proof);
  ASSERT_TRUE(agg.ok()) << agg.message();
  std::uint64_t total = 0;
  for (const PaymentRecord& rec : rig.ground_truth) total += rec.amount;
  EXPECT_EQ(agg.value().count, rig.ground_truth.size());
  EXPECT_EQ(agg.value().sum, total);

  auto window = RangeIndex::VerifyAggregate(digest, 100, 400,
                                            rig.index->AggregateQuery(100, 400));
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window.value().count, 3u);  // 120, 300, 200
  EXPECT_EQ(window.value().sum, 620u);
}

TEST(RangeIndexTest, TamperedAndIncompleteResultsRejected) {
  PaymentRig rig;
  rig.RunPaymentBlock({50, 120, 75, 300, 90, 42});
  Hash256 digest = rig.index->CurrentDigest();

  // Drop a result.
  auto dropped = rig.index->Query(40, 130);
  std::function<bool(mht::MbProofNode*)> drop = [&](mht::MbProofNode* node) {
    if (node->is_leaf) {
      for (std::size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].value) {
          node->entries.erase(node->entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    }
    for (auto& c : node->children) {
      if (c.node && drop(c.node.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(drop(dropped.root.get()));
  EXPECT_FALSE(RangeIndex::VerifyQuery(digest, 40, 130, dropped).ok());

  // Wrong digest.
  Hash256 wrong = digest;
  wrong[0] ^= 1;
  EXPECT_FALSE(
      RangeIndex::VerifyQuery(wrong, 40, 130, rig.index->Query(40, 130)).ok());
}

TEST(RangeIndexTest, EnclaveRejectsTamperedAux) {
  // Drive the verifier directly with corrupted aux material.
  PaymentRig rig;
  rig.RunPaymentBlock({50, 120});

  RangeIndex honest("h");
  RangeIndexVerifier verifier;
  Hash256 digest = verifier.GenesisDigest();
  // Replay the chain's blocks through a fresh index, checking each step.
  for (std::uint64_t h = 1; h <= rig.miner_node->Height(); ++h) {
    const chain::Block& blk = rig.miner_node->GetBlock(h);
    Bytes aux = honest.ApplyBlockCapturingAux(blk);
    auto next = verifier.ApplyUpdate(digest, aux, blk);
    ASSERT_TRUE(next.ok()) << next.message();
    digest = next.value();

    Bytes corrupted = aux;
    if (!corrupted.empty()) {
      corrupted[corrupted.size() / 2] ^= 1;
      auto bad = verifier.ApplyUpdate(digest, corrupted, blk);
      if (bad.ok()) {
        EXPECT_NE(bad.value(), digest);
      }
    }
  }
  EXPECT_EQ(digest, honest.CurrentDigest());
  EXPECT_EQ(digest, rig.index->CurrentDigest());
}

TEST(RangeIndexTest, PaymentKeyLayout) {
  EXPECT_LT(PaymentKey(5, 1, 0), PaymentKey(6, 0, 0));   // amount dominates
  EXPECT_LT(PaymentKey(5, 1, 0), PaymentKey(5, 2, 0));   // then height
  EXPECT_LT(PaymentKey(5, 1, 0), PaymentKey(5, 1, 1));   // then tx index
  EXPECT_NE(PaymentKey(5, 1, 0), PaymentKey(5, 1, 1));
}

}  // namespace
}  // namespace dcert::query
