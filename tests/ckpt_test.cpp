// Certified checkpoints: wire-format round trips and CRC rejection,
// VerifyCheckpoint's refusal of every tampered field, CheckpointStore
// durability (write/load/prune, corrupt files degrade to older checkpoints),
// CheckpointedIssuer cadence + log compaction + O(delta) recovery, SpServer
// checkpoint rehydration (including the immediately-verifying index
// certificate on an empty tail), and the superlight bootstrap-from-checkpoint
// path. The central claims under test: a tampered checkpoint can never
// produce a verifying state, and recovery through a checkpoint reproduces the
// exact certified chain the crash-free run had.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpointed_issuer.h"
#include "dcert/durable_issuer.h"
#include "dcert/superlight.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "svc/sp_client.h"
#include "svc/sp_server.h"
#include "svc/transport.h"
#include "workloads/workloads.h"

namespace dcert::ckpt {
namespace {

/// A mined reference chain (not certified): every test drives its own issuer
/// over these blocks so checkpoint/recovery runs are comparable.
struct ChainRig {
  chain::ChainConfig config;
  std::shared_ptr<const chain::ContractRegistry> registry;
  std::vector<chain::Block> blocks;  // heights 1..blocks.size()
  std::uint64_t hot_account = 0;     // account with historical writes

  explicit ChainRig(int count) {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    chain::FullNode node(config, registry);
    chain::Miner miner(node);
    workloads::AccountPool pool(4, 77);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    workloads::WorkloadGenerator gen(params, pool);
    for (int i = 0; i < count; ++i) {
      auto block =
          miner.MineBlock(gen.NextBlockTxs(5), 1700000000 + node.Height() * 15);
      if (!block.ok() || !node.SubmitBlock(block.value())) {
        throw std::runtime_error("rig mining failed");
      }
      blocks.push_back(block.value());
      if (hot_account == 0) {
        auto writes = query::ExtractHistoricalWrites(block.value());
        if (!writes.empty()) hot_account = writes.front().account_word;
      }
    }
  }
};

const ChainRig& Rig() {
  static const ChainRig rig(12);
  return rig;
}

struct IssuerPaths {
  std::string dir;
  core::DurableIssuerOptions options;
  CheckpointConfig ckpt;
};

IssuerPaths FreshIssuerPaths(const std::string& tag, std::uint64_t segments,
                             std::uint64_t interval) {
  IssuerPaths p;
  p.dir = ::testing::TempDir() + tag;
  p.options.block_log_path = p.dir + "_blocks.log";
  p.options.cert_log_path = p.dir + "_certs.log";
  p.options.sealed_key_path = p.dir + "_key.sealed";
  p.options.segment_records = segments;
  p.ckpt.dir = p.dir + "_ckpt";
  p.ckpt.interval = interval;
  std::remove(p.options.sealed_key_path.c_str());
  for (const std::string& base :
       {p.options.block_log_path, p.options.cert_log_path}) {
    std::remove(base.c_str());
    std::remove((base + ".manifest").c_str());
    for (int first = 0; first < 64; ++first) {
      const std::string seg = base + ".seg." + std::to_string(first);
      std::remove(seg.c_str());
      std::remove((seg + ".idx").c_str());
    }
  }
  for (int h = 0; h < 64; ++h) {
    std::remove((p.ckpt.dir + "/ckpt-" + std::to_string(h) + ".dcp").c_str());
  }
  return p;
}

Result<CheckpointedIssuer> OpenIssuer(const IssuerPaths& p) {
  return CheckpointedIssuer::Open(Rig().config, Rig().registry, p.options,
                                  p.ckpt);
}

void FlipLastByte(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << path;
  f.seekp(-1, std::ios::end);
  f.put('\xA5');
}

/// An issuer checkpoint produced by a real cadenced run (body + state +
/// shadow-index content), loaded back from disk.
Checkpoint MakeIssuerCheckpoint() {
  IssuerPaths p = FreshIssuerPaths("ckpt_make", 0, 4);
  auto ci = OpenIssuer(p);
  if (!ci.ok()) throw std::runtime_error(ci.message());
  for (int i = 0; i < 8; ++i) {
    if (Status st = ci.value().CertifyBlock(Rig().blocks[i]); !st) {
      throw std::runtime_error(st.message());
    }
  }
  auto ck = ci.value().Store().Load(8);
  if (!ck.ok()) throw std::runtime_error(ck.message());
  return ck.value();
}

TEST(CheckpointFormatTest, SerializeDeserializeRoundTripsAllFields) {
  const Checkpoint ck = MakeIssuerCheckpoint();
  ASSERT_TRUE(ck.has_body);
  ASSERT_TRUE(ck.has_state);
  ASSERT_TRUE(ck.has_index);
  const Bytes bytes = ck.Serialize();
  auto back = Checkpoint::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().height, ck.height);
  EXPECT_EQ(back.value().header.Hash(), ck.header.Hash());
  EXPECT_EQ(back.value().block_cert.Serialize(), ck.block_cert.Serialize());
  EXPECT_EQ(back.value().txs.size(), ck.txs.size());
  EXPECT_EQ(back.value().state, ck.state);
  EXPECT_EQ(back.value().index_digest, ck.index_digest);
  EXPECT_EQ(back.value().index_content, ck.index_content);
  EXPECT_EQ(back.value().has_index_cert, ck.has_index_cert);
  // Round trip is byte-stable: re-serializing reproduces the input.
  EXPECT_EQ(back.value().Serialize(), bytes);
}

TEST(CheckpointFormatTest, CrcCatchesEveryByteFlipAndTruncation) {
  const Checkpoint ck = MakeIssuerCheckpoint();
  const Bytes bytes = ck.Serialize();
  // Flipping any of a few sampled bytes (header, middle, tail) must fail the
  // CRC before any field decoding is attempted.
  for (std::size_t pos : {std::size_t{0}, bytes.size() / 3, bytes.size() / 2,
                          bytes.size() - 1}) {
    Bytes bad = bytes;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(Checkpoint::Deserialize(bad).ok()) << "flipped byte " << pos;
  }
  Bytes truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_FALSE(Checkpoint::Deserialize(truncated).ok());
  EXPECT_FALSE(Checkpoint::Deserialize(Bytes{}).ok());
}

TEST(CheckpointVerifyTest, AcceptsGenuineAndRejectsEveryTampering) {
  const Checkpoint genuine = MakeIssuerCheckpoint();
  const Hash256 measurement = core::ExpectedEnclaveMeasurement();
  ASSERT_TRUE(VerifyCheckpoint(genuine, measurement).ok());

  {  // Wrong enclave identity: the envelope check fails.
    Hash256 other = measurement;
    other[0] ^= 0xFF;
    EXPECT_FALSE(VerifyCheckpoint(genuine, other).ok());
  }
  {  // Height not matching the certified header.
    Checkpoint bad = genuine;
    bad.height += 1;
    EXPECT_FALSE(VerifyCheckpoint(bad, measurement).ok());
  }
  {  // Tampered state snapshot: SMT root no longer matches the header's.
    Checkpoint bad = genuine;
    ASSERT_FALSE(bad.state.empty());
    bad.state.begin()->second ^= 1;
    EXPECT_FALSE(VerifyCheckpoint(bad, measurement).ok());
  }
  {  // Smuggled extra state entry.
    Checkpoint bad = genuine;
    bad.state[chain::SlotKey(0xDEAD, 0xBEEF)] = 42;
    EXPECT_FALSE(VerifyCheckpoint(bad, measurement).ok());
  }
  {  // Tampered body: tx root mismatch.
    Checkpoint bad = genuine;
    ASSERT_FALSE(bad.txs.empty());
    bad.txs.pop_back();
    EXPECT_FALSE(VerifyCheckpoint(bad, measurement).ok());
  }
  {  // A doctored header invalidates the certificate's digest binding.
    Checkpoint bad = genuine;
    bad.header.state_root[0] ^= 0x01;
    EXPECT_FALSE(VerifyCheckpoint(bad, measurement).ok());
  }
}

TEST(CheckpointStoreTest, WriteLoadPruneAndCorruptFilesDegradeGracefully) {
  const std::string dir = ::testing::TempDir() + "ckpt_store_dir";
  for (int h = 0; h < 64; ++h) {
    std::remove((dir + "/ckpt-" + std::to_string(h) + ".dcp").c_str());
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.message();

  const Checkpoint base = MakeIssuerCheckpoint();  // height 8
  Checkpoint at3 = base;
  at3.height = 3;  // only the file name derives from height here; Load checks
  at3.header.height = 3;
  ASSERT_TRUE(store.value().Write(base).ok());
  ASSERT_TRUE(store.value().Write(at3).ok());
  EXPECT_EQ(store.value().Heights(), (std::vector<std::uint64_t>{3, 8}));

  auto loaded = store.value().Load(8);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(loaded.value().header.Hash(), base.header.Hash());

  // LoadLatestValid: respects max_height, and skips files that fail
  // verification (at3's height was doctored, so its cert binding fails).
  const Hash256 measurement = core::ExpectedEnclaveMeasurement();
  auto best = store.value().LoadLatestValid(~std::uint64_t{0}, measurement);
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(best.value().has_value());
  EXPECT_EQ(best.value()->height, 8u);
  auto capped = store.value().LoadLatestValid(7, measurement);
  ASSERT_TRUE(capped.ok());
  EXPECT_FALSE(capped.value().has_value());  // only the doctored 3 remains

  // A corrupt newest file degrades to the older checkpoint, not a failure.
  Checkpoint at9 = base;
  at9.height = 9;
  ASSERT_TRUE(store.value().Write(at9).ok());
  FlipLastByte(dir + "/ckpt-9.dcp");
  auto fallback = store.value().LoadLatestValid(~std::uint64_t{0}, measurement);
  ASSERT_TRUE(fallback.ok());
  ASSERT_TRUE(fallback.value().has_value());
  EXPECT_EQ(fallback.value()->height, 8u);
  EXPECT_FALSE(store.value().Load(9).ok());

  // Prune keeps the newest files by height (validity is the readers' job).
  ASSERT_TRUE(store.value().Prune(2).ok());
  EXPECT_EQ(store.value().Heights(), (std::vector<std::uint64_t>{8, 9}));
  EXPECT_FALSE(store.value().Prune(0).ok());
}

TEST(CheckpointedIssuerTest, CadenceWritesPrunesAndCompactsLogs) {
  IssuerPaths p = FreshIssuerPaths("ckpt_cadence", 4, 3);
  auto ci = OpenIssuer(p);
  ASSERT_TRUE(ci.ok()) << ci.message();
  for (const chain::Block& blk : Rig().blocks) {
    ASSERT_TRUE(ci.value().CertifyBlock(blk).ok());
  }
  // Interval 3 over 12 blocks: checkpoints at 3, 6, 9, 12; keep=2 retains
  // {9, 12}; compaction below the OLDEST retained (9) drops whole segments
  // of 4 records -> both logs re-based at 8 (block 9's anchor cert, record
  // 8, survives with it).
  EXPECT_EQ(ci.value().LastCheckpointHeight(), 12u);
  EXPECT_EQ(ci.value().Store().Heights(), (std::vector<std::uint64_t>{9, 12}));
  EXPECT_EQ(ci.value().Durable().Blocks().BaseHeight(), 8u);
  EXPECT_EQ(ci.value().Durable().Blocks().Count(), 13u);
  EXPECT_EQ(ci.value().Durable().Certs().BaseIndex(), 8u);
  EXPECT_FALSE(ci.value().Durable().Blocks().Get(7).ok());
  EXPECT_TRUE(ci.value().Durable().Blocks().Get(9).ok());
}

TEST(CheckpointedIssuerTest, RecoveryReplaysOnlyTheTailAndMatchesReference) {
  const ChainRig& rig = Rig();
  IssuerPaths p = FreshIssuerPaths("ckpt_recover", 4, 3);
  Hash256 tip_hash;
  Bytes tip_cert;
  {
    auto ci = OpenIssuer(p);
    ASSERT_TRUE(ci.ok()) << ci.message();
    for (const chain::Block& blk : rig.blocks) {
      ASSERT_TRUE(ci.value().CertifyBlock(blk).ok());
    }
    tip_hash = ci.value().Durable().Issuer().Node().Tip().header.Hash();
    tip_cert = ci.value().Durable().Issuer().LatestCert()->Serialize();
  }
  {
    // Clean reopen: the newest checkpoint (height 12) IS the tip; zero
    // blocks replayed, state and cert chain identical.
    auto ci = OpenIssuer(p);
    ASSERT_TRUE(ci.ok()) << ci.message();
    EXPECT_EQ(ci.value().BootstrapHeight(), 12u);
    EXPECT_EQ(ci.value().Durable().Recovery().blocks_replayed, 0u);
    EXPECT_EQ(ci.value().Durable().Issuer().Node().Tip().header.Hash(),
              tip_hash);
    EXPECT_EQ(ci.value().Durable().Issuer().LatestCert()->Serialize(),
              tip_cert);
    // The restored shadow index reproduced the certified digest and kept
    // serving; its digest matches the one sealed into the checkpoint.
    auto ck = ci.value().Store().Load(12);
    ASSERT_TRUE(ck.ok());
    EXPECT_EQ(ci.value().ShadowIndex().CurrentDigest(), ck.value().index_digest);
  }
  {
    // Newest checkpoint rots: recovery falls back to the OLDER retained one
    // (height 9) and replays exactly the 3-block tail — which compaction
    // deliberately preserved.
    FlipLastByte(p.ckpt.dir + "/ckpt-12.dcp");
    auto ci = OpenIssuer(p);
    ASSERT_TRUE(ci.ok()) << ci.message();
    EXPECT_EQ(ci.value().BootstrapHeight(), 9u);
    EXPECT_EQ(ci.value().Durable().Recovery().blocks_replayed, 3u);
    EXPECT_EQ(ci.value().Durable().Issuer().Node().Tip().header.Hash(),
              tip_hash);
    EXPECT_EQ(ci.value().Durable().Issuer().LatestCert()->Serialize(),
              tip_cert);
    // Recovery re-sealed the overdue checkpoint at the tip (cadence crossed
    // while "down"), so the next open is O(0) again.
    EXPECT_EQ(ci.value().LastCheckpointHeight(), 12u);
  }
  {
    // No usable checkpoint at all + compacted history: recovery must refuse
    // loudly rather than silently serve a truncated chain.
    std::remove((p.ckpt.dir + "/ckpt-9.dcp").c_str());
    std::remove((p.ckpt.dir + "/ckpt-12.dcp").c_str());
    auto ci = OpenIssuer(p);
    ASSERT_FALSE(ci.ok());
    EXPECT_NE(ci.message().find("checkpoint"), std::string::npos)
        << ci.message();
  }
}

TEST(CheckpointedIssuerTest, PipelinedSpansCheckpointAtTheBoundary) {
  const ChainRig& rig = Rig();
  IssuerPaths p = FreshIssuerPaths("ckpt_pipelined", 0, 3);
  {
    auto ci = OpenIssuer(p);
    ASSERT_TRUE(ci.ok()) << ci.message();
    ASSERT_TRUE(ci.value().CertifyBlocksPipelined(rig.blocks).ok());
    // One cadence check at the span boundary: a single checkpoint at the
    // final tip, never a mid-span (potentially inconsistent) snapshot.
    EXPECT_EQ(ci.value().LastCheckpointHeight(), 12u);
    EXPECT_EQ(ci.value().Store().Heights(),
              (std::vector<std::uint64_t>{12}));
  }
  auto ci = OpenIssuer(p);
  ASSERT_TRUE(ci.ok()) << ci.message();
  EXPECT_EQ(ci.value().BootstrapHeight(), 12u);
  EXPECT_EQ(ci.value().Durable().Recovery().blocks_replayed, 0u);
}

TEST(SuperlightBootstrapTest, AcceptsCheckpointAndRejectsTamperedDigest) {
  const Checkpoint ck = MakeIssuerCheckpoint();
  core::SuperlightClient client(core::ExpectedEnclaveMeasurement());
  ASSERT_TRUE(BootstrapSuperlight(client, ck).ok());
  EXPECT_EQ(client.Height(), ck.height);

  // Issuer checkpoints carry no index cert, so no certified digest yet.
  EXPECT_FALSE(client.CertifiedIndexDigest("historical").has_value());

  // A checkpoint that fails certificate validation must not move the client.
  Checkpoint bad = ck;
  bad.header.timestamp ^= 1;
  core::SuperlightClient fresh(core::ExpectedEnclaveMeasurement());
  EXPECT_FALSE(BootstrapSuperlight(fresh, bad).ok());
  EXPECT_EQ(fresh.Height(), 0u);
}

// ---------------------------------------------------------------------------
// SpServer: checkpoint export + warm start.

/// Announcements (block cert + hierarchical index cert per block) over the
/// rig's chain, as a live CI would emit them.
const std::vector<svc::AnnounceRequest>& Announcements() {
  static const std::vector<svc::AnnounceRequest>* anns = [] {
    auto* out = new std::vector<svc::AnnounceRequest>();
    core::CertificateIssuer ci(Rig().config, Rig().registry);
    auto hist = std::make_shared<query::HistoricalIndex>("historical");
    ci.AttachIndex(hist);
    for (const chain::Block& blk : Rig().blocks) {
      auto icerts = ci.ProcessBlockHierarchical(blk);
      if (!icerts.ok()) throw std::runtime_error(icerts.message());
      svc::AnnounceRequest ann;
      ann.block = blk;
      ann.block_cert = *ci.LatestCert();
      ann.index_digest = hist->CurrentDigest();
      ann.index_cert = icerts.value()[0];
      out->push_back(std::move(ann));
    }
    return out;
  }();
  return *anns;
}

TEST(SpCheckpointTest, ExportedCheckpointWarmStartsAFreshServerInO1) {
  const auto& anns = Announcements();
  svc::SpServer source{svc::SpServerConfig{}};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(source.Announce(anns[i]).ok());
  }
  auto ck = source.ExportCheckpoint();
  ASSERT_TRUE(ck.ok()) << ck.message();
  EXPECT_EQ(ck.value().height, 8u);
  EXPECT_FALSE(ck.value().has_body);   // an SP holds no bodies or state
  EXPECT_FALSE(ck.value().has_state);
  EXPECT_TRUE(ck.value().has_index);
  // The last announcement's REAL index certificate rides along.
  ASSERT_TRUE(ck.value().has_index_cert);
  ASSERT_TRUE(
      VerifyCheckpoint(ck.value(), core::ExpectedEnclaveMeasurement()).ok());

  svc::SpServer warm{svc::SpServerConfig{}};
  ASSERT_TRUE(warm.RehydrateFromCheckpoint(ck.value()).ok());
  EXPECT_EQ(warm.Stats().tip_height, 8u);
  // A bootstrap, not a merge: the second call must refuse.
  EXPECT_FALSE(warm.RehydrateFromCheckpoint(ck.value()).ok());

  // Satellite claim: with an empty tail the carried index certificate serves
  // IMMEDIATELY — a superlight client accepts the warm tip's block AND index
  // certificates before any live announcement arrives.
  svc::LoopbackTransport loopback;
  ASSERT_TRUE(warm.Serve(loopback).ok());
  svc::SpClient client(loopback.Connect());
  auto tip = client.FetchTip();
  ASSERT_TRUE(tip.ok()) << tip.message();
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  EXPECT_TRUE(
      light.ValidateAndAccept(tip.value().header, tip.value().block_cert).ok());
  EXPECT_TRUE(light
                  .AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                   tip.value().index_digest, "historical")
                  .ok());

  // The restored index serves verifying proofs, and live announcements
  // resume right above the checkpoint.
  auto r = client.Historical(Rig().hot_account, 1, 8);
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_TRUE(query::HistoricalIndex::VerifyQuery(tip.value().index_digest,
                                                  Rig().hot_account, 1, 8,
                                                  r.value().proof)
                  .ok());
  for (std::size_t i = 8; i < anns.size(); ++i) {
    ASSERT_TRUE(warm.Announce(anns[i]).ok());
  }
  EXPECT_EQ(warm.Stats().tip_height, anns.size());
  warm.Shutdown();
}

TEST(SpCheckpointTest, StoreBackedRehydrateReplaysOnlyTheTail) {
  // A cadenced issuer leaves durable stores + checkpoints behind; a fresh SP
  // rehydrates from checkpoint 8 and replays only blocks 9..12.
  IssuerPaths p = FreshIssuerPaths("ckpt_sp_tail", 0, 4);
  {
    auto ci = OpenIssuer(p);
    ASSERT_TRUE(ci.ok()) << ci.message();
    for (const chain::Block& blk : Rig().blocks) {
      ASSERT_TRUE(ci.value().CertifyBlock(blk).ok());
    }
    ASSERT_EQ(ci.value().Store().Heights(),
              (std::vector<std::uint64_t>{8, 12}));
  }
  auto store = CheckpointStore::Open(p.ckpt.dir);
  auto blocks = chain::BlockStore::Open(p.options.block_log_path);
  auto certs = core::CertificateStore::Open(p.options.cert_log_path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(blocks.ok());
  ASSERT_TRUE(certs.ok());
  auto ck = store.value().Load(8);
  ASSERT_TRUE(ck.ok()) << ck.message();

  svc::SpServer server{svc::SpServerConfig{}};
  ASSERT_TRUE(
      server.RehydrateFromCheckpoint(ck.value(), blocks.value(), certs.value())
          .ok());
  svc::SpServerStats stats = server.Stats();
  EXPECT_EQ(stats.tip_height, 12u);
  // 1 checkpoint restore + 4 tail blocks, instead of all 12.
  EXPECT_EQ(stats.blocks_applied, 5u);

  // The tail advanced the index past the checkpoint's certified digest, so
  // the index-cert slot falls back to the fail-safe placeholder (clients
  // reject it as an index cert; block-cert trust is unaffected).
  svc::LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());
  svc::SpClient client(loopback.Connect());
  auto tip = client.FetchTip();
  ASSERT_TRUE(tip.ok()) << tip.message();
  core::SuperlightClient light(core::ExpectedEnclaveMeasurement());
  EXPECT_TRUE(
      light.ValidateAndAccept(tip.value().header, tip.value().block_cert).ok());
  EXPECT_FALSE(light
                   .AcceptIndexCert(tip.value().header, tip.value().index_cert,
                                    tip.value().index_digest, "historical")
                   .ok());
  // The rebuilt index still serves proofs verifying against the served digest.
  auto r = client.Historical(Rig().hot_account, 1, 12);
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_TRUE(query::HistoricalIndex::VerifyQuery(tip.value().index_digest,
                                                  Rig().hot_account, 1, 12,
                                                  r.value().proof)
                  .ok());
  server.Shutdown();
}

TEST(SpCheckpointTest, RehydrateRejectsForeignOrMisalignedStores) {
  const auto& anns = Announcements();
  svc::SpServer source{svc::SpServerConfig{}};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(source.Announce(anns[i]).ok());
  }
  auto ck = source.ExportCheckpoint();
  ASSERT_TRUE(ck.ok());

  {
    // Stores that do not contain the checkpoint's height: refused.
    IssuerPaths p = FreshIssuerPaths("ckpt_sp_short", 0, 0);
    auto ci = core::DurableCertificateIssuer::Open(Rig().config, Rig().registry,
                                                   p.options);
    ASSERT_TRUE(ci.ok()) << ci.message();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ci.value().CertifyBlock(Rig().blocks[i]).ok());
    }
    svc::SpServer server{svc::SpServerConfig{}};
    EXPECT_FALSE(server
                     .RehydrateFromCheckpoint(ck.value(), ci.value().Blocks(),
                                              ci.value().Certs())
                     .ok());
    EXPECT_EQ(server.Stats().blocks_applied, 0u);
  }
  {
    // A tampered checkpoint never rehydrates anything.
    Checkpoint bad = ck.value();
    bad.index_digest[0] ^= 0x01;
    svc::SpServer server{svc::SpServerConfig{}};
    EXPECT_FALSE(server.RehydrateFromCheckpoint(bad).ok());
    EXPECT_EQ(server.Stats().blocks_applied, 0u);
  }
}

TEST(CheckpointStoreTest, LoadLatestValidRacesConcurrentSealAndPrune) {
  // A reader bootstrapping from the store while a writer seals fresh
  // checkpoints and prunes old ones: LoadLatestValid must never error and
  // never hand back anything but a fully verified checkpoint — a file
  // unlinked or half-renamed under its feet reads as "skip", not "fail".
  IssuerPaths p = FreshIssuerPaths("ckpt_race_src", 0, 2);
  p.ckpt.keep = 8;  // retain every sealed height so the race has variety
  auto ci = OpenIssuer(p);
  ASSERT_TRUE(ci.ok()) << ci.message();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ci.value().CertifyBlock(Rig().blocks[i]).ok());
  }
  // Genuine checkpoints at several heights (interval 2 over 8 blocks).
  std::vector<Checkpoint> checkpoints;
  for (std::uint64_t h : ci.value().Store().Heights()) {
    auto ck = ci.value().Store().Load(h);
    ASSERT_TRUE(ck.ok()) << ck.message();
    checkpoints.push_back(ck.value());
  }
  ASSERT_GE(checkpoints.size(), 2u);

  const std::string dir = ::testing::TempDir() + "ckpt_race_store";
  for (int h = 0; h < 64; ++h) {
    std::remove((dir + "/ckpt-" + std::to_string(h) + ".dcp").c_str());
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.message();
  ASSERT_TRUE(store.value().Write(checkpoints.front()).ok());

  const Hash256 measurement = core::ExpectedEnclaveMeasurement();
  std::vector<std::uint64_t> valid_heights;
  for (const Checkpoint& ck : checkpoints) valid_heights.push_back(ck.height);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> reader_failed{false};
  std::string reader_error;
  std::mutex reader_mu;

  std::thread reader([&] {
    while (!stop.load()) {
      auto best = store.value().LoadLatestValid(~std::uint64_t{0}, measurement);
      ++reads;
      if (!best.ok()) {
        std::lock_guard<std::mutex> lk(reader_mu);
        reader_failed.store(true);
        reader_error = best.message();
        return;
      }
      if (best.value().has_value()) {
        ++hits;
        const std::uint64_t h = best.value()->height;
        bool known = false;
        for (std::uint64_t v : valid_heights) known |= v == h;
        if (!known) {
          std::lock_guard<std::mutex> lk(reader_mu);
          reader_failed.store(true);
          reader_error = "unknown height " + std::to_string(h);
          return;
        }
      }
    }
  });

  // The writer churns: seal every height round-robin, prune down to 2 files
  // between rounds, so the reader races renames and unlinks constantly.
  for (int round = 0; round < 30; ++round) {
    for (const Checkpoint& ck : checkpoints) {
      ASSERT_TRUE(store.value().Write(ck).ok());
    }
    ASSERT_TRUE(store.value().Prune(2).ok());
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(reader_failed.load()) << reader_error;
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
}

}  // namespace
}  // namespace dcert::ckpt
