// Group-law tests for the secp256k1 implementation.
#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcert::crypto {
namespace {

U256 RandomScalar(Rng& rng) {
  return Curve().Fn().Reduce(
      U256(rng.NextU64(), rng.NextU64(), rng.NextU64(), rng.NextU64()));
}

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(Generator().IsOnCurve());
}

TEST(Secp256k1Test, KnownMultiplesOfG) {
  // 2G from the standard tables.
  AffinePoint two_g = ScalarMulBase(U256(2)).ToAffine();
  EXPECT_EQ(two_g.x.ToHex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.ToHex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
  // 3G.
  AffinePoint three_g = ScalarMulBase(U256(3)).ToAffine();
  EXPECT_EQ(three_g.x.ToHex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
  EXPECT_EQ(three_g.y.ToHex(),
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672");
}

TEST(Secp256k1Test, OrderTimesGIsInfinity) {
  EXPECT_TRUE(ScalarMulBase(Curve().N()).IsInfinity());
  std::uint64_t borrow = 0;
  U256 n_minus_1 = Sub(Curve().N(), U256(1), borrow);
  // (n-1)G = -G.
  AffinePoint neg_g = ScalarMulBase(n_minus_1).ToAffine();
  EXPECT_EQ(neg_g.x, Generator().x);
  EXPECT_EQ(neg_g.y, Curve().Fp().Neg(Generator().y));
}

TEST(Secp256k1Test, AdditionMatchesScalarArithmetic) {
  // aG + bG == (a+b)G.
  Rng rng(50);
  for (int i = 0; i < 10; ++i) {
    U256 a = RandomScalar(rng);
    U256 b = RandomScalar(rng);
    JacobianPoint lhs = AddJacobian(ScalarMulBase(a), ScalarMulBase(b));
    U256 sum = Curve().Fn().Add(a, b);
    JacobianPoint rhs = ScalarMulBase(sum);
    EXPECT_EQ(lhs.ToAffine(), rhs.ToAffine());
  }
}

TEST(Secp256k1Test, DoublingMatchesAddition) {
  Rng rng(51);
  U256 k = RandomScalar(rng);
  JacobianPoint p = ScalarMulBase(k);
  EXPECT_EQ(Double(p).ToAffine(), AddJacobian(p, p).ToAffine());
}

TEST(Secp256k1Test, AddInverseGivesInfinity) {
  JacobianPoint g = JacobianPoint::FromAffine(Generator());
  AffinePoint neg = {Generator().x, Curve().Fp().Neg(Generator().y), false};
  EXPECT_TRUE(AddMixed(g, neg).IsInfinity());
}

TEST(Secp256k1Test, InfinityIsIdentity) {
  JacobianPoint inf = JacobianPoint::Infinity();
  JacobianPoint g = JacobianPoint::FromAffine(Generator());
  EXPECT_EQ(AddJacobian(inf, g).ToAffine(), Generator());
  EXPECT_EQ(AddJacobian(g, inf).ToAffine(), Generator());
  EXPECT_TRUE(Double(inf).IsInfinity());
  EXPECT_TRUE(AddJacobian(inf, inf).IsInfinity());
}

TEST(Secp256k1Test, ScalarMulZeroAndInfinity) {
  EXPECT_TRUE(ScalarMulBase(U256(0)).IsInfinity());
  AffinePoint inf{U256(0), U256(0), true};
  EXPECT_TRUE(ScalarMul(U256(5), inf).IsInfinity());
}

TEST(Secp256k1Test, ScalarMulAssociativity) {
  // (a*b)G == a*(bG).
  Rng rng(52);
  U256 a = RandomScalar(rng);
  U256 b = RandomScalar(rng);
  U256 ab = Curve().Fn().Mul(a, b);
  AffinePoint lhs = ScalarMulBase(ab).ToAffine();
  AffinePoint bg = ScalarMulBase(b).ToAffine();
  AffinePoint rhs = ScalarMul(a, bg).ToAffine();
  EXPECT_EQ(lhs, rhs);
}

TEST(Secp256k1Test, DoubleScalarMulMatchesSeparate) {
  Rng rng(53);
  for (int i = 0; i < 5; ++i) {
    U256 a = RandomScalar(rng);
    U256 b = RandomScalar(rng);
    U256 k = RandomScalar(rng);
    AffinePoint p = ScalarMulBase(k).ToAffine();
    AffinePoint combined = DoubleScalarMul(a, b, p).ToAffine();
    AffinePoint separate =
        AddJacobian(ScalarMulBase(a), ScalarMul(b, p)).ToAffine();
    EXPECT_EQ(combined, separate);
  }
}

TEST(Secp256k1Test, SerializeRoundTrip) {
  Rng rng(54);
  AffinePoint p = ScalarMulBase(RandomScalar(rng)).ToAffine();
  Bytes encoded = p.Serialize();
  ASSERT_EQ(encoded.size(), 64u);
  auto decoded = AffinePoint::Deserialize(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(Secp256k1Test, DeserializeRejectsOffCurve) {
  Bytes bad(64, 0x01);
  EXPECT_FALSE(AffinePoint::Deserialize(bad).has_value());
  Bytes wrong_size(63, 0);
  EXPECT_FALSE(AffinePoint::Deserialize(wrong_size).has_value());
}

TEST(Secp256k1Test, DeserializeRejectsCoordinatesAboveP) {
  AffinePoint p = Generator();
  Bytes encoded = p.Serialize();
  // Overwrite x with p (the field prime) which is >= p and must be rejected.
  Bytes pbytes = Curve().P().ToBytesBE();
  std::copy(pbytes.begin(), pbytes.end(), encoded.begin());
  EXPECT_FALSE(AffinePoint::Deserialize(encoded).has_value());
}

TEST(Secp256k1Test, SerializeInfinityThrows) {
  AffinePoint inf{U256(0), U256(0), true};
  EXPECT_THROW(inf.Serialize(), std::logic_error);
}

}  // namespace
}  // namespace dcert::crypto
