// Fleet subsystem: shard-map partition arithmetic (every key/height owned by
// exactly one shard, exact window splitting, serialization), shard-scoped
// serving (stale map versions rejected retryably, shard-local cache
// invalidation), the untrusted router (forwarding, announce fan-out, local
// shard-map serving), and the verified scatter-gather client — including a
// seeded fault soak between the router and one shard replica proving zero
// corrupt results are ever accepted, and the paranoid cross-check catching a
// divergent (lagging) replica.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "chain/node.h"
#include "dcert/issuer.h"
#include "fleet/fleet_client.h"
#include "fleet/fleet_router.h"
#include "fleet/shard_map.h"
#include "query/extraction.h"
#include "query/historical_index.h"
#include "svc/fault_transport.h"
#include "svc/sp_client.h"
#include "svc/sp_server.h"
#include "workloads/workloads.h"

namespace dcert::fleet {
namespace {

/// A small certified chain shared by the tests, plus one account known to be
/// written in the LAST block (so a replica lagging one block serves a
/// provably different answer for it).
struct FleetChain {
  std::vector<svc::AnnounceRequest> announcements;
  std::uint64_t hot_account = 0;   // written in the last block
  std::uint64_t tip_height = 0;

  explicit FleetChain(int blocks, std::size_t txs = 8) {
    chain::ChainConfig config;
    config.difficulty_bits = 2;
    auto registry = workloads::MakeBlockbenchRegistry(1);
    core::CertificateIssuer ci(config, registry);
    auto hist = std::make_shared<query::HistoricalIndex>("historical");
    ci.AttachIndex(hist);
    chain::FullNode node(config, registry);
    chain::Miner miner(node);
    workloads::AccountPool pool(4, 77);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    params.kv_keys = 8;
    workloads::WorkloadGenerator gen(params, pool);

    for (int i = 0; i < blocks; ++i) {
      auto block = miner.MineBlock(gen.NextBlockTxs(txs),
                                   1700000000 + node.Height() * 15);
      if (!block.ok()) throw std::runtime_error("mine: " + block.message());
      if (Status st = node.SubmitBlock(block.value()); !st) {
        throw std::runtime_error("submit: " + st.message());
      }
      auto icerts = ci.ProcessBlockHierarchical(block.value());
      if (!icerts.ok()) throw std::runtime_error("certify: " + icerts.message());
      svc::AnnounceRequest ann;
      ann.block = block.value();
      ann.block_cert = *ci.LatestCert();
      ann.index_digest = hist->CurrentDigest();
      ann.index_cert = icerts.value()[0];
      announcements.push_back(std::move(ann));
    }
    auto last_writes =
        query::ExtractHistoricalWrites(announcements.back().block);
    if (last_writes.empty()) {
      throw std::runtime_error("last block produced no historical writes");
    }
    hot_account = last_writes.front().account_word;
    tip_height = announcements.back().block.header.height;
  }
};

const FleetChain& Chain() {
  static FleetChain chain(6);
  return chain;
}

ShardMap MustCreate(const ShardMapConfig& cfg) {
  auto map = ShardMap::Create(cfg);
  if (!map.ok()) throw std::runtime_error(map.message());
  return map.value();
}

/// A live in-process shard fleet: one sharded SpServer per shard x replica,
/// each holding the full chain, each on its own loopback transport.
struct LiveFleet {
  ShardMap map;
  std::vector<std::vector<std::unique_ptr<svc::LoopbackTransport>>> transports;
  std::vector<std::vector<std::unique_ptr<svc::SpServer>>> servers;

  explicit LiveFleet(const ShardMapConfig& cfg,
                     int lag_blocks_for_last_replica = 0)
      : map(MustCreate(cfg)) {
    const auto& chain = Chain();
    transports.resize(map.TotalShards());
    servers.resize(map.TotalShards());
    for (std::uint32_t s = 0; s < map.TotalShards(); ++s) {
      for (std::uint32_t r = 0; r < map.Replicas(); ++r) {
        svc::SpServerConfig config;
        config.shard = map.AssignmentFor(s);
        config.shard_map = map.Serialize();
        auto server = std::make_unique<svc::SpServer>(config);
        auto transport = std::make_unique<svc::LoopbackTransport>();
        Status st = server->Serve(*transport);
        if (!st.ok()) throw std::runtime_error(st.message());
        // The last replica may deliberately lag (divergence tests).
        const bool lags = lag_blocks_for_last_replica > 0 &&
                          r + 1 == map.Replicas();
        const std::size_t count =
            chain.announcements.size() -
            (lags ? static_cast<std::size_t>(lag_blocks_for_last_replica) : 0);
        for (std::size_t i = 0; i < count; ++i) {
          if (Status ast = server->Announce(chain.announcements[i]); !ast) {
            throw std::runtime_error(ast.message());
          }
        }
        transports[s].push_back(std::move(transport));
        servers[s].push_back(std::move(server));
      }
    }
  }

  ~LiveFleet() {
    for (auto& per_shard : servers) {
      for (auto& server : per_shard) server->Shutdown();
    }
  }

  FleetClient::BackendConnector DirectConnector() {
    return [this](std::uint32_t s, std::uint32_t r) -> svc::Connector {
      svc::LoopbackTransport* lb = transports[s][r].get();
      return [lb] {
        return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
      };
    };
  }
};

// ---------------------------------------------------------------------------
// Shard-map arithmetic
// ---------------------------------------------------------------------------

TEST(ShardMapTest, EveryKeyAndHeightOwnedByExactlyOneShard) {
  ShardMapConfig cfg;
  cfg.version = 3;
  cfg.key_shards = 4;
  cfg.height_bands = 3;
  cfg.band_blocks = 5;
  const ShardMap map = MustCreate(cfg);
  ASSERT_EQ(map.TotalShards(), 12u);

  std::vector<svc::ShardAssignment> assignments;
  for (std::uint32_t s = 0; s < map.TotalShards(); ++s) {
    assignments.push_back(map.AssignmentFor(s));
    EXPECT_TRUE(assignments.back().Sharded());
    EXPECT_EQ(assignments.back().map_version, cfg.version);
    EXPECT_EQ(assignments.back().shard_id, s);
  }

  // Accounts probe the key-shard boundaries (quarters of the 64-bit space)
  // plus extremes; heights sweep every band including the open-ended last.
  const std::uint64_t quarter = std::uint64_t{1} << 62;
  const std::vector<std::uint64_t> accounts = {
      0,       1,           quarter - 1,     quarter,      quarter + 1,
      2 * quarter - 1,      2 * quarter,     3 * quarter,  3 * quarter + 7,
      ~std::uint64_t{0} - 1, ~std::uint64_t{0}, 0x123456789abcdefULL};
  std::vector<std::uint64_t> heights;
  for (std::uint64_t h = 0; h <= 17; ++h) heights.push_back(h);
  heights.push_back(1000000);

  for (const std::uint64_t account : accounts) {
    for (const std::uint64_t height : heights) {
      const std::uint32_t owner = map.ShardOf(account, height);
      ASSERT_LT(owner, map.TotalShards());
      int owners = 0;
      for (std::uint32_t s = 0; s < map.TotalShards(); ++s) {
        if (assignments[s].OwnsWrite(account, height)) {
          ++owners;
          EXPECT_EQ(s, owner) << "account " << account << " height " << height;
        }
      }
      EXPECT_EQ(owners, 1) << "account " << account << " height " << height;
    }
  }
}

TEST(ShardMapTest, SplitCoversWindowExactly) {
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.key_shards = 2;
  cfg.height_bands = 3;
  cfg.band_blocks = 10;
  const ShardMap map = MustCreate(cfg);

  const std::uint64_t account = 42;
  const auto subs = map.Split(account, 1, 35);
  ASSERT_EQ(subs.size(), 3u);  // [1,9] [10,19] [20,35]
  EXPECT_EQ(subs[0].from_height, 1u);
  EXPECT_EQ(subs[0].to_height, 9u);
  EXPECT_EQ(subs[1].from_height, 10u);
  EXPECT_EQ(subs[1].to_height, 19u);
  EXPECT_EQ(subs[2].from_height, 20u);
  EXPECT_EQ(subs[2].to_height, 35u);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    // Each piece sits entirely in one band and names the shard owning it.
    EXPECT_EQ(subs[i].shard_id, map.ShardOf(account, subs[i].from_height));
    EXPECT_EQ(subs[i].shard_id, map.ShardOf(account, subs[i].to_height));
    if (i > 0) {
      EXPECT_EQ(subs[i].from_height, subs[i - 1].to_height + 1);
    }
  }

  // A window inside one band is a single piece; inverted windows are empty.
  ASSERT_EQ(map.Split(account, 12, 17).size(), 1u);
  EXPECT_TRUE(map.Split(account, 9, 3).empty());
  // The open-ended last band swallows arbitrarily high windows.
  const auto far = map.Split(account, 25, 1000000);
  ASSERT_EQ(far.size(), 1u);
  EXPECT_EQ(far[0].shard_id, map.ShardOf(account, 1000000));
}

TEST(ShardMapTest, SerializeRoundTripsAndRejectsGarbage) {
  ShardMapConfig cfg;
  cfg.version = 7;
  cfg.key_shards = 2;
  cfg.height_bands = 2;
  cfg.band_blocks = 4;
  cfg.replicas = 2;
  std::vector<std::vector<std::string>> eps(4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    eps[s] = {"127.0.0.1:" + std::to_string(9000 + 2 * s),
              "127.0.0.1:" + std::to_string(9001 + 2 * s)};
  }
  auto map = ShardMap::Create(cfg, eps);
  ASSERT_TRUE(map.ok()) << map.message();

  const Bytes wire = map.value().Serialize();
  auto back = ShardMap::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().Version(), 7u);
  EXPECT_EQ(back.value().KeyShards(), 2u);
  EXPECT_EQ(back.value().HeightBands(), 2u);
  EXPECT_EQ(back.value().Replicas(), 2u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(back.value().Endpoints(s), eps[s]);
  }

  // Truncations and junk must fail cleanly, never crash or mis-size.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, wire.size() - 1}) {
    Bytes trunc(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(ShardMap::Deserialize(trunc).ok()) << "cut=" << cut;
  }

  // Config validation: version 0 is reserved for "unsharded", bands need a
  // band size, and the endpoint grid must match the shard/replica shape.
  ShardMapConfig bad = cfg;
  bad.version = 0;
  EXPECT_FALSE(ShardMap::Create(bad).ok());
  bad = cfg;
  bad.band_blocks = 0;
  EXPECT_FALSE(ShardMap::Create(bad).ok());
  bad = cfg;
  bad.key_shards = 0;
  EXPECT_FALSE(ShardMap::Create(bad).ok());
  eps.pop_back();
  EXPECT_FALSE(ShardMap::Create(cfg, eps).ok());
}

// ---------------------------------------------------------------------------
// Shard-scoped serving
// ---------------------------------------------------------------------------

TEST(ShardServingTest, StaleMapVersionRejectedRetryably) {
  ShardMapConfig cfg;
  cfg.version = 2;
  cfg.key_shards = 1;
  LiveFleet fleet(cfg);
  svc::SpClient client(fleet.transports[0][0]->Connect());
  const auto& chain = Chain();

  // Correct version and shard: served and verifiable.
  auto ok = client.HistoricalSharded(2, 0, chain.hot_account, 1,
                                     chain.tip_height);
  ASSERT_TRUE(ok.ok()) << ok.message();

  // Stale version: rejected with the retryable kStaleShard status the client
  // surfaces via LastReplyStaleShard (FleetClient's refresh trigger).
  auto stale = client.HistoricalSharded(1, 0, chain.hot_account, 1,
                                        chain.tip_height);
  EXPECT_FALSE(stale.ok());
  EXPECT_TRUE(client.LastReplyStaleShard());
  EXPECT_EQ(client.Stats().stale_shard_replies, 1u);

  // Wrong shard id at the right version: same rejection (misrouted frame).
  auto misrouted = client.HistoricalSharded(2, 5, chain.hot_account, 1,
                                            chain.tip_height);
  EXPECT_FALSE(misrouted.ok());
  EXPECT_TRUE(client.LastReplyStaleShard());
  EXPECT_GE(fleet.servers[0][0]->Stats().shard_rejects, 2u);

  // The rejected client refreshes: the served map decodes to the live
  // version, after which the query succeeds.
  auto wire = client.FetchShardMap();
  ASSERT_TRUE(wire.ok()) << wire.message();
  auto fresh = ShardMap::Deserialize(wire.value());
  ASSERT_TRUE(fresh.ok()) << fresh.message();
  EXPECT_EQ(fresh.value().Version(), 2u);
  auto retry = client.HistoricalSharded(fresh.value().Version(), 0,
                                        chain.hot_account, 1, chain.tip_height);
  EXPECT_TRUE(retry.ok()) << retry.message();
}

TEST(ShardServingTest, OutOfShardAnnouncementSkipsCacheInvalidation) {
  // A shard owning only the first height band: announcements for later
  // heights still apply (the index must stay full for proofs to verify) but
  // must not flush the reply cache — nothing this shard serves changed.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.height_bands = 2;
  cfg.band_blocks = 4;  // band 0 owns heights [0,3]
  const ShardMap map = MustCreate(cfg);
  svc::SpServerConfig config;
  config.shard = map.AssignmentFor(0);
  config.shard_map = map.Serialize();
  svc::SpServer server(config);
  svc::LoopbackTransport loopback;
  ASSERT_TRUE(server.Serve(loopback).ok());

  const auto& chain = Chain();
  for (std::size_t i = 0; i < 3; ++i) {  // heights 1..3: in-band writes
    ASSERT_TRUE(server.Announce(chain.announcements[i]).ok());
  }
  // Warm the cache with an owned-window query.
  svc::SpClient client(loopback.Connect());
  auto warm = client.HistoricalSharded(1, 0, chain.hot_account, 1, 3);
  ASSERT_TRUE(warm.ok()) << warm.message();
  const auto before = server.Stats().cache;

  // Heights 4..6 write outside the owned band: applied, but the flush is
  // skipped (satellite: out-of-shard announcements don't flush needlessly).
  for (std::size_t i = 3; i < chain.announcements.size(); ++i) {
    ASSERT_TRUE(server.Announce(chain.announcements[i]).ok());
  }
  const auto after = server.Stats().cache;
  EXPECT_EQ(after.invalidations, before.invalidations);
  EXPECT_GE(after.invalidations_skipped, before.invalidations_skipped + 3);
  EXPECT_EQ(server.Stats().blocks_applied, chain.announcements.size());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Router + verified scatter-gather
// ---------------------------------------------------------------------------

TEST(FleetRouterTest, RoutesAnnouncesAndServesMapEndToEnd) {
  // Two height-band shards behind a router; the client's whole-window query
  // splits across both shards and each piece verifies independently.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.height_bands = 2;
  cfg.band_blocks = 4;
  const auto& chain = Chain();

  // Empty servers: the router's announce fan-out populates them.
  const ShardMap map = MustCreate(cfg);
  std::vector<std::unique_ptr<svc::LoopbackTransport>> transports;
  std::vector<std::unique_ptr<svc::SpServer>> servers;
  for (std::uint32_t s = 0; s < map.TotalShards(); ++s) {
    svc::SpServerConfig config;
    config.shard = map.AssignmentFor(s);
    config.shard_map = map.Serialize();
    servers.push_back(std::make_unique<svc::SpServer>(config));
    transports.push_back(std::make_unique<svc::LoopbackTransport>());
    ASSERT_TRUE(servers.back()->Serve(*transports.back()).ok());
  }
  FleetRouter router(
      map,
      [&transports](std::uint32_t s, std::uint32_t) -> svc::Connector {
        svc::LoopbackTransport* lb = transports[s].get();
        return [lb] {
          return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
        };
      });
  svc::LoopbackTransport front;
  ASSERT_TRUE(router.Serve(front).ok());

  // Announce through the router: every shard applies every block.
  svc::SpClient announcer(front.Connect());
  for (const auto& ann : chain.announcements) {
    auto ack = announcer.Announce(ann);
    ASSERT_TRUE(ack.ok()) << ack.message();
  }
  for (const auto& server : servers) {
    EXPECT_EQ(server->Stats().blocks_applied, chain.announcements.size());
  }

  // Re-announcing is idempotent: the duplicates are rejected shard-side as
  // stale but the fan-out still reports success.
  auto dup = announcer.Announce(chain.announcements.back());
  EXPECT_TRUE(dup.ok()) << dup.message();

  // Scatter-gather through the router: the window spans both bands, and the
  // merged result equals the single-server truth.
  FleetClient client(map,
                     [&front](std::uint32_t, std::uint32_t) -> svc::Connector {
                       return [&front] {
                         return Result<std::unique_ptr<svc::ClientTransport>>(
                             front.Connect());
                       };
                     });
  auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(got.ok()) << got.message();
  EXPECT_EQ(client.Stats().subqueries, 2u);
  EXPECT_EQ(client.Stats().verified, 2u);

  LiveFleet direct(ShardMapConfig{});  // unsharded single server, same chain
  FleetClient truth(direct.map, direct.DirectConnector());
  auto want = truth.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(want.ok()) << want.message();
  EXPECT_EQ(got.value(), want.value());

  auto agg = client.Aggregate(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(agg.ok()) << agg.message();
  EXPECT_EQ(agg.value().count, static_cast<std::uint64_t>(want.value().size()));

  // The router serves its own map (RefreshMap goes through kShardMap) and
  // refuses to merge multi-band plain queries it cannot verify.
  EXPECT_TRUE(client.RefreshMap().ok());
  auto plain = announcer.Historical(chain.hot_account, 1, chain.tip_height);
  EXPECT_FALSE(plain.ok());
  EXPECT_NE(plain.message().find("scatter-gather"), std::string::npos)
      << plain.message();

  const auto stats = router.Stats();
  EXPECT_GT(stats.forwarded, 0u);
  EXPECT_GE(stats.fanouts, chain.announcements.size());
  EXPECT_GT(stats.shard_map_serves, 0u);
  EXPECT_GT(stats.errors, 0u);  // the refused plain multi-band query

  router.Shutdown();
  for (auto& server : servers) server->Shutdown();
}

TEST(FleetRouterTest, SeededFaultSoakAcceptsZeroCorruptReplies) {
  // A seeded FaultInjectingTransport sits between the router and replica 0
  // of shard 0, corrupting/truncating/dropping backend replies. The client
  // must never accept a reply that fails verification: every answer it does
  // return equals the clean-fleet truth, and the damaged replies show up as
  // verify failures + replica failovers instead of wrong data.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.height_bands = 2;
  cfg.band_blocks = 4;
  cfg.replicas = 2;
  LiveFleet fleet(cfg);
  const auto& chain = Chain();

  auto counters = std::make_shared<svc::FaultCounters>();
  svc::FaultConfig fc;
  fc.corrupt_rate = 0.6;
  fc.truncate_rate = 0.2;
  fc.seed = 0xF1EE7;
  FleetRouterConfig rc;
  rc.backend_deadline = std::chrono::milliseconds(500);
  FleetRouter router(
      fleet.map,
      [&fleet, &fc, &counters](std::uint32_t s,
                               std::uint32_t r) -> svc::Connector {
        svc::LoopbackTransport* lb = fleet.transports[s][r].get();
        svc::Connector dial = [lb] {
          return Result<std::unique_ptr<svc::ClientTransport>>(lb->Connect());
        };
        if (s == 0 && r == 0) {
          return svc::FaultyConnector(std::move(dial), fc, counters);
        }
        return dial;
      },
      rc);
  svc::LoopbackTransport front;
  ASSERT_TRUE(router.Serve(front).ok());

  // Ground truth from the same fleet over clean direct connections.
  FleetClient truth(fleet.map, fleet.DirectConnector());
  FleetClient client(fleet.map,
                     [&front](std::uint32_t, std::uint32_t) -> svc::Connector {
                       return [&front] {
                         return Result<std::unique_ptr<svc::ClientTransport>>(
                             front.Connect());
                       };
                     });

  int answered = 0;
  for (int round = 0; round < 20; ++round) {
    auto want = truth.Historical(chain.hot_account, 1, chain.tip_height);
    ASSERT_TRUE(want.ok()) << want.message();
    auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
    if (!got.ok()) continue;  // denial is allowed; wrong data never is
    ++answered;
    EXPECT_EQ(got.value(), want.value()) << "round " << round;
  }
  const auto stats = client.Stats();
  EXPECT_GT(answered, 0);
  EXPECT_GT(counters->Total(), 0u);          // the soak really injected faults
  EXPECT_GT(stats.verify_failures, 0u);      // damaged replies were rejected
  EXPECT_GT(stats.failovers, 0u);            // ... and retried on a replica
  EXPECT_EQ(stats.cross_check_mismatches, 0u);

  router.Shutdown();
}

TEST(FleetClientTest, ParanoidCrossCheckCatchesLaggingReplica) {
  // Replica 1 is one certified block behind. Both replicas' replies verify
  // (each against its own certified tip), so only the paranoid cross-check
  // can notice the divergence — and it must fail loudly, not pick one.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.replicas = 2;
  LiveFleet fleet(cfg, /*lag_blocks_for_last_replica=*/1);
  const auto& chain = Chain();

  FleetClientConfig paranoid;
  paranoid.cross_check = true;
  FleetClient client(fleet.map, fleet.DirectConnector(), paranoid);
  auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
  EXPECT_FALSE(got.ok());
  EXPECT_GE(client.Stats().cross_checks, 1u);
  EXPECT_GE(client.Stats().cross_check_mismatches, 1u);

  // Control: identical replicas cross-check clean.
  LiveFleet healthy(cfg);
  FleetClient control(healthy.map, healthy.DirectConnector(), paranoid);
  auto ok = control.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(ok.ok()) << ok.message();
  EXPECT_GE(control.Stats().cross_checks, 1u);
  EXPECT_EQ(control.Stats().cross_check_mismatches, 0u);
}

TEST(FleetClientTest, CrossCheckPartnerSkipsQuarantinedReplica) {
  // Replica 1 of 3 carries misbehavior evidence. Quarantine is absolute: it
  // must receive NO traffic — not as a primary, and not as the cross-check
  // partner (which used to be the fixed (replica+1)%replicas) — while the
  // paranoid query still succeeds via the two healthy replicas.
  ShardMapConfig cfg;
  cfg.version = 1;
  cfg.replicas = 3;
  LiveFleet fleet(cfg);
  const auto& chain = Chain();

  FleetClientConfig paranoid;
  paranoid.cross_check = true;
  FleetClient client(fleet.map, fleet.DirectConnector(), paranoid);
  MisbehaviorEvidence ev;
  ev.replica = 1;
  ev.verdict = "test: simulated misbehavior";
  client.Health()->ReportMisbehavior(ev);

  std::vector<std::uint64_t> served_before;
  for (const auto& per_shard : fleet.servers) {
    served_before.push_back(per_shard[1]->Stats().served);
  }
  for (int round = 0; round < 4; ++round) {
    auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
    ASSERT_TRUE(got.ok()) << got.message();
  }
  EXPECT_GE(client.Stats().cross_checks, 4u);
  EXPECT_EQ(client.Stats().cross_check_mismatches, 0u);
  for (std::size_t s = 0; s < fleet.servers.size(); ++s) {
    EXPECT_EQ(fleet.servers[s][1]->Stats().served, served_before[s])
        << "quarantined replica of shard " << s << " received traffic";
  }
}

TEST(FleetClientTest, StaleClientRefreshesMapAndRecovers) {
  // The fleet reshards (version 2) while the client still holds version 1:
  // the first shard reply is kStaleShard, the client refreshes its map from
  // the fleet and the query succeeds without surfacing an error.
  ShardMapConfig live_cfg;
  live_cfg.version = 2;
  live_cfg.height_bands = 2;
  live_cfg.band_blocks = 4;
  LiveFleet fleet(live_cfg);
  const auto& chain = Chain();

  ShardMapConfig stale_cfg;
  stale_cfg.version = 1;  // single shard, pre-reshard view
  FleetClient client(MustCreate(stale_cfg), fleet.DirectConnector());
  auto got = client.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(got.ok()) << got.message();
  EXPECT_EQ(client.Map().Version(), 2u);
  EXPECT_GE(client.Stats().map_refreshes, 1u);

  FleetClient truth(fleet.map, fleet.DirectConnector());
  auto want = truth.Historical(chain.hot_account, 1, chain.tip_height);
  ASSERT_TRUE(want.ok()) << want.message();
  EXPECT_EQ(got.value(), want.value());
}

}  // namespace
}  // namespace dcert::fleet
