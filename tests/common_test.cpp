// Unit tests for the shared byte, serialization, status, and RNG utilities.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"

namespace dcert {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(data), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), data);
  EXPECT_EQ(FromHex("0001ABFF"), data);
}

TEST(BytesTest, FromHexRejectsBadInput) {
  EXPECT_THROW(FromHex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(FromHex("zz"), std::invalid_argument);    // bad digit
}

TEST(Hash256Test, FromBytesRequiresExactly32) {
  Bytes short_buf(31, 0);
  Bytes long_buf(33, 0);
  EXPECT_THROW(Hash256::FromBytes(short_buf), std::invalid_argument);
  EXPECT_THROW(Hash256::FromBytes(long_buf), std::invalid_argument);
}

TEST(Hash256Test, HexRoundTripAndOrdering) {
  Hash256 a = Hash256::FromHex(
      "0000000000000000000000000000000000000000000000000000000000000001");
  Hash256 b = Hash256::FromHex(
      "0000000000000000000000000000000000000000000000000000000000000002");
  EXPECT_LT(a, b);
  EXPECT_EQ(Hash256::FromHex(a.ToHex()), a);
  EXPECT_TRUE(Hash256().IsZero());
  EXPECT_FALSE(a.IsZero());
}

TEST(Hash256Test, BitIndexingIsMsbFirst) {
  Hash256 h;
  h[0] = 0x80;  // bit 0 set
  h[1] = 0x01;  // bit 15 set
  EXPECT_TRUE(h.Bit(0));
  EXPECT_FALSE(h.Bit(1));
  EXPECT_TRUE(h.Bit(15));
  EXPECT_FALSE(h.Bit(14));
}

TEST(SerializeTest, RoundTripAllFieldTypes) {
  Encoder enc;
  enc.U8(0xab);
  enc.U16(0x1234);
  enc.U32(0xdeadbeef);
  enc.U64(0x0123456789abcdefULL);
  enc.Bool(true);
  enc.Str("hello");
  Hash256 h = Hash256::FromHex(
      "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff");
  enc.HashField(h);
  enc.Blob(FromHex("c0ffee"));

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.U8(), 0xab);
  EXPECT_EQ(dec.U16(), 0x1234);
  EXPECT_EQ(dec.U32(), 0xdeadbeefu);
  EXPECT_EQ(dec.U64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.Bool());
  EXPECT_EQ(dec.Str(), "hello");
  EXPECT_EQ(dec.HashField(), h);
  EXPECT_EQ(dec.Blob(), FromHex("c0ffee"));
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_NO_THROW(dec.ExpectEnd());
}

TEST(SerializeTest, TruncatedInputThrows) {
  Encoder enc;
  enc.U32(42);
  Bytes data = enc.bytes();
  data.pop_back();
  Decoder dec(data);
  EXPECT_THROW(dec.U32(), DecodeError);
}

TEST(SerializeTest, TruncatedBlobThrows) {
  Encoder enc;
  enc.U32(100);  // declares 100 bytes but provides none
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.Blob(), DecodeError);
}

TEST(SerializeTest, TrailingBytesDetected) {
  Encoder enc;
  enc.U8(1);
  enc.U8(2);
  Decoder dec(enc.bytes());
  dec.U8();
  EXPECT_THROW(dec.ExpectEnd(), DecodeError);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));

  Status err = Status::Error("bad proof");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "bad proof");
  EXPECT_EQ(err.WithContext("cert").message(), "cert: bad proof");
  EXPECT_TRUE(ok.WithContext("cert").ok());
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = Result<int>::Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  EXPECT_THROW(rng.NextBelow(0), std::invalid_argument);
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextRange(5, 8));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
  EXPECT_THROW(rng.NextRange(3, 2), std::invalid_argument);
}

TEST(RngTest, NextBytesLengthAndVariety) {
  Rng rng(11);
  Bytes b = rng.NextBytes(100);
  EXPECT_EQ(b.size(), 100u);
  std::set<std::uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 10u);  // overwhelmingly likely
}

// --- arena allocator -------------------------------------------------------

struct Tracked {
  static int live;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(ArenaTest, NewConstructsAndDeleteRecyclesSlots) {
  common::Arena<Tracked> arena;
  Tracked* a = arena.New(7);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(Tracked::live, 1);
  arena.Delete(a);
  EXPECT_EQ(Tracked::live, 0);
  // The freed slot is reused before the bump pointer advances.
  Tracked* b = arena.New(9);
  EXPECT_EQ(static_cast<void*>(b), static_cast<void*>(a));
  EXPECT_EQ(b->value, 9);
  arena.Delete(b);
}

TEST(ArenaTest, ChurnStaysInsideCarvedSlots) {
  common::Arena<Tracked> arena;
  std::vector<Tracked*> live;
  Rng rng(13);
  for (int wave = 0; wave < 40; ++wave) {
    for (int i = 0; i < 100; ++i) live.push_back(arena.New(i));
    // Free the same number in random order; later waves must recycle
    // those slots instead of carving fresh ones.
    for (int i = 0; i < 100; ++i) {
      const std::size_t at = rng.NextBelow(live.size());
      arena.Delete(live[at]);
      live[at] = live.back();
      live.pop_back();
    }
  }
  // 4000 allocations churned through, but at most ~200 were ever live at
  // once — the carved capacity must track the high-water mark (rounded up
  // by geometric chunk growth), not the allocation count.
  EXPECT_LE(arena.SlotCount(), 512u);
  EXPECT_EQ(Tracked::live, static_cast<int>(live.size()));
  for (Tracked* p : live) arena.Delete(p);
  EXPECT_EQ(Tracked::live, 0);
}

TEST(ArenaTest, ArenaPtrRunsDestructorAndReturnsSlot) {
  common::Arena<Tracked> arena;
  {
    common::ArenaPtr<Tracked> p = common::MakeArenaPtr(arena, 42);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(Tracked::live, 1);
  }
  EXPECT_EQ(Tracked::live, 0);
  // An empty ArenaPtr is safe to destroy.
  common::ArenaPtr<Tracked> empty;
  EXPECT_EQ(empty.get(), nullptr);
}

}  // namespace
}  // namespace dcert
