// File-backed block store: persistence, recovery, replay.
#include "chain/block_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workloads/workloads.h"

namespace dcert::chain {
namespace {

/// Temp file path unique per test, removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "dcert_store_" + name + ".bin") {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

struct StoreRig {
  ChainConfig config;
  std::shared_ptr<const ContractRegistry> registry;
  std::unique_ptr<FullNode> node;
  std::unique_ptr<Miner> miner;
  workloads::AccountPool pool{4, 808};
  std::unique_ptr<workloads::WorkloadGenerator> gen;

  StoreRig() {
    config.difficulty_bits = 2;
    registry = workloads::MakeBlockbenchRegistry(1);
    node = std::make_unique<FullNode>(config, registry);
    miner = std::make_unique<Miner>(*node);
    workloads::WorkloadGenerator::Params params;
    params.kind = workloads::Workload::kKvStore;
    params.instances_per_workload = 1;
    gen = std::make_unique<workloads::WorkloadGenerator>(params, pool);
  }

  Block NextBlock() {
    auto block = miner->MineBlock(gen->NextBlockTxs(3), 100 + node->Height());
    if (!block.ok() || !node->SubmitBlock(block.value())) {
      throw std::runtime_error("mining failed");
    }
    return block.value();
  }
};

TEST(Crc32Test, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(Crc32(StrBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
  EXPECT_NE(Crc32(StrBytes("a")), Crc32(StrBytes("b")));
}

TEST(BlockStoreTest, AppendGetRoundTrip) {
  TempFile file("roundtrip");
  StoreRig rig;
  auto store = BlockStore::Open(file.path);
  ASSERT_TRUE(store.ok()) << store.message();
  ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
  for (int i = 0; i < 5; ++i) {
    Block blk = rig.NextBlock();
    ASSERT_TRUE(store.value().Append(blk).ok());
  }
  EXPECT_EQ(store.value().Count(), 6u);
  for (std::uint64_t h = 0; h <= 5; ++h) {
    auto block = store.value().Get(h);
    ASSERT_TRUE(block.ok()) << block.message();
    EXPECT_EQ(block.value().header.Hash(), rig.node->GetBlock(h).header.Hash());
  }
  EXPECT_FALSE(store.value().Get(6).ok());
}

TEST(BlockStoreTest, RejectsOutOfOrderAppend) {
  TempFile file("order");
  StoreRig rig;
  auto store = BlockStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  Block b1 = rig.NextBlock();
  EXPECT_FALSE(store.value().Append(b1).ok());  // height 1 before genesis
  ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
  EXPECT_TRUE(store.value().Append(b1).ok());
  EXPECT_FALSE(store.value().Append(b1).ok());  // duplicate height
}

TEST(BlockStoreTest, ReopenSeesAllRecords) {
  TempFile file("reopen");
  StoreRig rig;
  {
    auto store = BlockStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.value().Append(rig.NextBlock()).ok());
  }
  auto reopened = BlockStore::Open(file.path);
  ASSERT_TRUE(reopened.ok()) << reopened.message();
  EXPECT_EQ(reopened.value().Count(), 4u);
  EXPECT_FALSE(reopened.value().RecoveredFromTornTail());
  auto tip = reopened.value().Get(3);
  ASSERT_TRUE(tip.ok());
  EXPECT_EQ(tip.value().header.height, 3u);
}

TEST(BlockStoreTest, TornTailTruncatedOnReopen) {
  TempFile file("torn");
  StoreRig rig;
  {
    auto store = BlockStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
    ASSERT_TRUE(store.value().Append(rig.NextBlock()).ok());
  }
  // Simulate a crash mid-append: garbage partial record at the end.
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::app);
    const char garbage[] = {0x44, 0x43, 0x52, 0x54, 0x50};  // magic + partial len
    out.write(garbage, sizeof(garbage));
  }
  auto recovered = BlockStore::Open(file.path);
  ASSERT_TRUE(recovered.ok()) << recovered.message();
  EXPECT_TRUE(recovered.value().RecoveredFromTornTail());
  EXPECT_EQ(recovered.value().Count(), 2u);
  // And appends continue cleanly after recovery.
  EXPECT_TRUE(recovered.value().Append(rig.NextBlock()).ok());
  EXPECT_EQ(recovered.value().Count(), 3u);
}

TEST(BlockStoreTest, CorruptPayloadDetected) {
  TempFile file("corrupt");
  StoreRig rig;
  {
    auto store = BlockStore::Open(file.path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
    ASSERT_TRUE(store.value().Append(rig.NextBlock()).ok());
  }
  // Flip a byte inside the second record's payload.
  {
    std::fstream f(file.path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-10, std::ios::end);
    char b;
    f.seekg(f.tellp());
    f.read(&b, 1);
    f.seekp(-10, std::ios::end);
    b ^= 1;
    f.write(&b, 1);
  }
  auto reopened = BlockStore::Open(file.path);
  ASSERT_TRUE(reopened.ok());
  // The corrupt record (and everything after) is dropped; the prefix stays.
  EXPECT_TRUE(reopened.value().RecoveredFromTornTail());
  EXPECT_EQ(reopened.value().Count(), 1u);
}

TEST(BlockStoreTest, ReplayRebuildsFullNode) {
  TempFile file("replay");
  StoreRig rig;
  auto store = BlockStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(store.value().Append(rig.NextBlock()).ok());

  auto replayed = ReplayFromStore(store.value(), rig.config, rig.registry);
  ASSERT_TRUE(replayed.ok()) << replayed.message();
  EXPECT_EQ(replayed.value().Height(), rig.node->Height());
  EXPECT_EQ(replayed.value().Tip().header.Hash(), rig.node->Tip().header.Hash());
  EXPECT_EQ(replayed.value().State().Root(), rig.node->State().Root());
}

TEST(BlockStoreTest, ReplayRejectsForeignGenesis) {
  TempFile file("foreign");
  StoreRig rig;
  auto store = BlockStore::Open(file.path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value().Append(rig.node->GetBlock(0)).ok());

  ChainConfig other = rig.config;
  other.genesis_timestamp += 1;  // different genesis
  EXPECT_FALSE(ReplayFromStore(store.value(), other, rig.registry).ok());
}

}  // namespace
}  // namespace dcert::chain
