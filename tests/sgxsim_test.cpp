// SGX simulator: measurement, attestation, sealing, Ecall cost accounting.
#include <gtest/gtest.h>

#include "sgxsim/attestation.h"
#include "sgxsim/cost_model.h"
#include "sgxsim/enclave.h"

namespace dcert::sgxsim {
namespace {

TEST(MeasurementTest, DeterministicAndIdentitySensitive) {
  Hash256 a = ComputeMeasurement("prog", "1.0");
  EXPECT_EQ(a, ComputeMeasurement("prog", "1.0"));
  EXPECT_NE(a, ComputeMeasurement("prog", "1.1"));     // version change
  EXPECT_NE(a, ComputeMeasurement("other", "1.0"));    // program change
}

TEST(AttestationTest, ReportRoundTrip) {
  Enclave enclave("prog", "1.0");
  Quote quote = enclave.MakeQuote(Hash256::FromHex(std::string(64, 'a')));
  AttestationReport report = AttestationService::Attest(quote);
  EXPECT_TRUE(AttestationService::VerifyReport(report).ok());
  EXPECT_EQ(report.quote, quote);
}

TEST(AttestationTest, ForgedReportRejected) {
  Enclave enclave("prog", "1.0");
  AttestationReport report =
      AttestationService::Attest(enclave.MakeQuote(Hash256()));

  AttestationReport bad_measurement = report;
  bad_measurement.quote.measurement[0] ^= 1;
  EXPECT_FALSE(AttestationService::VerifyReport(bad_measurement).ok());

  AttestationReport bad_data = report;
  bad_data.quote.report_data[0] ^= 1;
  EXPECT_FALSE(AttestationService::VerifyReport(bad_data).ok());

  AttestationReport bad_sig = report;
  bad_sig.ias_signature.s = crypto::Curve().Fn().Add(bad_sig.ias_signature.s,
                                                     crypto::U256(1));
  EXPECT_FALSE(AttestationService::VerifyReport(bad_sig).ok());
}

TEST(AttestationTest, SerializationRoundTrip) {
  Enclave enclave("prog", "2.0");
  AttestationReport report =
      AttestationService::Attest(enclave.MakeQuote(Hash256()));
  auto decoded = AttestationReport::Deserialize(report.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), report);
  EXPECT_TRUE(AttestationService::VerifyReport(decoded.value()).ok());
}

TEST(SealingTest, RoundTrip) {
  Enclave enclave("prog", "1.0");
  Bytes secret = StrBytes("the enclave signing key");
  Bytes sealed = enclave.Seal(secret);
  EXPECT_NE(sealed, secret);
  auto unsealed = enclave.Unseal(sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value(), secret);
}

TEST(SealingTest, DifferentMeasurementCannotUnseal) {
  Enclave a("prog", "1.0");
  Enclave b("prog", "2.0");
  Bytes sealed = a.Seal(StrBytes("secret"));
  EXPECT_FALSE(b.Unseal(sealed).ok());
}

TEST(SealingTest, TamperedBlobRejected) {
  Enclave enclave("prog", "1.0");
  Bytes sealed = enclave.Seal(StrBytes("secret"));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(enclave.Unseal(sealed).ok());
  Bytes truncated(sealed.begin(), sealed.end() - 1);
  EXPECT_FALSE(enclave.Unseal(truncated).ok());
}

TEST(EcallTest, AccountingCountsCallsAndBytes) {
  Enclave enclave("prog", "1.0");
  int result = enclave.Ecall(1000, [] { return 41 + 1; });
  EXPECT_EQ(result, 42);
  enclave.Ecall(2000, [] {});
  EXPECT_EQ(enclave.Costs().ecalls(), 2u);
  EXPECT_EQ(enclave.Costs().total_input_bytes(), 3000u);
}

TEST(CostModelTest, ModeledTimeIncludesTransitions) {
  CostModelParams params;
  params.ecall_transition_ns = 10'000;
  params.in_enclave_slowdown = 2.0;
  CostAccounting acc(params);
  acc.RecordEcall(/*wall_ns=*/100'000, /*input_bytes=*/1024);
  EXPECT_EQ(acc.ModeledEnclaveTimeNs(), 100'000 * 2 + 10'000);
  EXPECT_EQ(acc.ModeledOverheadNs(), 100'000 + 10'000);
}

TEST(CostModelTest, PagingKicksInAboveEpcLimit) {
  CostModelParams params;
  params.epc_limit_bytes = 4096 * 10;
  params.paging_ns_per_page = 1000;
  params.ecall_transition_ns = 0;
  params.in_enclave_slowdown = 1.0;
  CostAccounting acc(params);
  acc.RecordEcall(0, params.epc_limit_bytes + 4096 * 3);
  EXPECT_EQ(acc.paged_pages(), 3u);
  EXPECT_EQ(acc.ModeledEnclaveTimeNs(), 3000u);

  acc.RecordEcall(0, params.epc_limit_bytes);  // exactly at the limit: no paging
  EXPECT_EQ(acc.paged_pages(), 3u);
}

TEST(CostModelTest, NativeModelAddsNothing) {
  CostAccounting acc(CostModelParams::Native());
  acc.RecordEcall(50'000, 1 << 20);
  EXPECT_EQ(acc.ModeledEnclaveTimeNs(), 50'000u);
  EXPECT_EQ(acc.ModeledOverheadNs(), 0u);
}

TEST(CostModelTest, ResetClearsCounters) {
  CostAccounting acc(CostModelParams{});
  acc.RecordEcall(1000, 100);
  acc.RecordOcall();
  acc.Reset();
  EXPECT_EQ(acc.ecalls(), 0u);
  EXPECT_EQ(acc.ocalls(), 0u);
  EXPECT_EQ(acc.wall_ns(), 0u);
  EXPECT_EQ(acc.ModeledEnclaveTimeNs(), 0u);
}

}  // namespace
}  // namespace dcert::sgxsim
